// Package conformance bundles the framework's checkers into one battery for
// validating a CRDT algorithm end to end — the workflow of Sec 8's "Using
// the verification framework", executable in one call:
//
//  1. specification well-formedness: ⊲⊳ symmetric and nonComm(Γ, ⊲⊳) (Def 1),
//     plus ◀/▷ well-formedness for X-wins algorithms;
//  2. the CRDT-TS proof obligations (UCR algorithms);
//  3. the trace conditions on randomized executions: ACC via the ↣ witness
//     (or XACC via the ◀/▷ witness) and convergence (Lemma 5's SEC);
//  4. complete bounded decisions on short traces (exhaustive ACC/XACC);
//  5. exhaustive schedule exploration of small scripts (parallel explorer
//     cross-checked against the sequential oracle);
//  6. fault-injection convergence: scripted runs under seeded fault plans
//     (loss, duplication, reorder, partitions, crash/recovery, payload
//     corruption) still reach one abstract value once faults heal, and
//     replay deterministically;
//  7. snapshot recovery: re-running the same chaos workloads with periodic
//     stable-frontier checkpoints, broadcast-log truncation and
//     snapshot-based fresh resync converges to byte-identical canonical
//     states as full log replay;
//  8. batched transport convergence: the socket-style replica layer over
//     write-batching endpoints (mixed flush policies per node) reaches
//     byte-identical canonical states, replays deterministically, and keeps
//     balanced batch accounting;
//  9. socket snapshot catch-up: on a live three-peer unix-socket mesh, a
//     late joiner served through the transport's snapshot protocol (stable
//     checkpoint + retained log suffix) reaches canonical states
//     byte-identical to a full-log-replay join, deterministically on rerun,
//     and the compacting run provably truncated its broadcast logs;
//  10. multi-object socket mesh: four replicated objects of mixed algorithms
//     (including a product reassembled at read time from independently
//     replicated components) multiplexed over one transport endpoint per
//     node — batched shared-memory and live unix-socket legs — converge to
//     byte-identical per-object canonical states, keep the per-object frame
//     counters summing exactly to the per-peer wire totals, hold exactly one
//     socket pair per process pair, and serve a late joiner a per-object
//     snapshot catch-up over that one pair;
//  11. per-object fairness: a chatty and a quiet object sharing scheduled
//     endpoints (per-object send queues drained by deficit-weighted
//     round-robin, per-object max-delay overrides) — a deterministic
//     weighted Mem leg that must replay byte-for-byte, and a live
//     unix-socket leg where the quiet object's max-delay override forces
//     its frames onto the wire while the chatty backlog stays batched,
//     with the scheduler ledger and the per-object frame counters balancing
//     on every peer;
//  12. codec round-trip: every op, return value, effector and replica state
//     reached by drained runs survives decode(encode(x)) == x through the
//     canonical binary codec, and converged replicas encode byte-equal
//     (the canonical-form guarantee);
//  13. contextual refinement on a client program (the Abstraction Theorem's
//     client-facing guarantee), when a client is supplied.
//
// A nil error from Run means the algorithm passed every applicable check.
package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/crdt"
	"repro/internal/crdts/registry"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/proofmethod"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/transport"
)

// Config tunes the battery.
type Config struct {
	// Seeds is the number of randomized traces per trace-level check
	// (default 8).
	Seeds int
	// Steps is the scheduler steps for long traces (default 40).
	Steps int
	// Nodes is the cluster size for long traces (default 3).
	Nodes int
	// Workers is the worker count for the parallel schedule-exploration
	// check (default: sim picks GOMAXPROCS).
	Workers int
	// ChaosSeeds is the number of fault plans the fault-injection
	// convergence check runs per algorithm (default: Seeds, capped at 4).
	ChaosSeeds int
	// Client, when non-empty, is a client program source checked for
	// contextual refinement against the abstract machine.
	Client string
}

func (c Config) withDefaults() Config {
	if c.Seeds == 0 {
		c.Seeds = 8
	}
	if c.Steps == 0 {
		c.Steps = 40
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	return c
}

// CheckResult is one battery item's outcome.
type CheckResult struct {
	Name string
	Err  error
	// Skipped explains why a check did not apply (e.g. CRDT-TS for X-wins
	// algorithms).
	Skipped string
}

// Report is the battery outcome for one algorithm.
type Report struct {
	Algorithm string
	Checks    []CheckResult
}

// Err returns the first failed check, or nil.
func (r Report) Err() error {
	for _, c := range r.Checks {
		if c.Err != nil {
			return fmt.Errorf("%s: %s: %w", r.Algorithm, c.Name, c.Err)
		}
	}
	return nil
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.Algorithm)
	for _, c := range r.Checks {
		status := "ok"
		switch {
		case c.Err != nil:
			status = "FAIL: " + c.Err.Error()
		case c.Skipped != "":
			status = "skipped: " + c.Skipped
		}
		fmt.Fprintf(&b, "  %-30s %s\n", c.Name, status)
	}
	return b.String()
}

// Run executes the battery for one algorithm bundle.
func Run(alg registry.Algorithm, cfg Config) Report {
	cfg = cfg.withDefaults()
	rep := Report{Algorithm: alg.Name}
	add := func(name string, err error) {
		rep.Checks = append(rep.Checks, CheckResult{Name: name, Err: err})
	}
	skip := func(name, why string) {
		rep.Checks = append(rep.Checks, CheckResult{Name: name, Skipped: why})
	}

	// 1. Specification well-formedness.
	u := alg.Universe()
	add("⊲⊳ symmetric", spec.CheckSymmetric(alg.Spec, u.Ops))
	add("nonComm (Def 1)", spec.CheckNonComm(alg.Spec, u.Ops, u.States))
	if alg.IsX() {
		add("◀/▷ well-formed (Sec 9)", spec.CheckXWellFormed(alg.XSpec, u.Ops, u.States))
	} else {
		skip("◀/▷ well-formed (Sec 9)", "UCR algorithm: ◀ = ▷ = ∅")
	}

	// 2. CRDT-TS obligations.
	if alg.IsX() {
		skip("CRDT-TS obligations (Sec 8)", "applies to UCR algorithms; X-wins verified against XACC")
	} else {
		pm := proofmethod.Check(alg, proofmethod.Config{Seeds: cfg.Seeds, Steps: cfg.Steps, Nodes: cfg.Nodes})
		add("CRDT-TS obligations (Sec 8)", pm.Err())
	}

	// 3. Trace-level witness + SEC on long randomized executions.
	add("witness consistency + SEC", traceChecks(alg, cfg, false))

	// 4. Complete bounded decisions.
	add("exhaustive bounded decision", traceChecks(alg, cfg, true))

	// 5. Exhaustive schedule exploration: every delivery interleaving of a
	// small generated script converges, decided by the parallel explorer and
	// cross-checked against the sequential oracle.
	add("parallel schedule exploration", exploreChecks(alg, cfg))

	// 6. Fault-injection convergence: scripted runs under generated fault
	// plans (loss-with-retransmit, duplication, reorder windows, transient
	// partitions, crash/recovery with fresh resync) must still converge to
	// one abstract value once faults heal and delivery quiesces, and the
	// whole run must replay byte-for-byte from (script, seed, plan).
	add("fault-injection convergence", chaosChecks(alg, cfg))

	// 6b. Snapshot recovery: the same chaos run executed with snapshot
	// checkpoints (periodic stable-frontier snapshots, log truncation,
	// snapshot-based fresh resync) must converge to the byte-identical
	// canonical states the full-log-replay run reaches.
	add("snapshot recovery", snapshotChecks(alg, cfg))

	// 6c. Batched transport convergence: the replica layer over write-batching
	// endpoints (mixed flush policies per node, including an unbatched one)
	// still reaches byte-identical canonical states at quiescence, batched
	// runs replay deterministically, and the batch accounting balances —
	// batching is wire plumbing and must never change replication semantics.
	add("batched transport convergence", batchedChecks(alg, cfg))

	// 6d. Socket snapshot catch-up: the transport-layer state-transfer
	// counterpart of 6b, on real unix sockets — a late joiner admitted into a
	// live mesh catches up through a served checkpoint plus retained suffix,
	// and must be indistinguishable from one that replayed the full log.
	add("socket snapshot catch-up", socketSnapshotChecks(alg, cfg))

	// 6e. Multi-object socket mesh: four objects of mixed algorithms — this
	// algorithm, a companion, and two product components reassembled at read
	// time — multiplexed over one endpoint per node through the Node demux,
	// over batched Mem endpoints and over a live unix-socket mesh whose third
	// peer snapshot-catches-up on every object through one shared socket pair.
	add("multi-object socket mesh", multiObjectChecks(alg, cfg))

	// 6f. Per-object fairness: the delivery scheduler under a chatty/quiet
	// mixed workload — weighted Mem endpoints replay deterministically, and
	// on a live unix mesh the quiet object's max-delay override puts its
	// frames on the wire while the chatty object's backlog stays batched,
	// with the scheduler ledger balancing on every peer.
	add("per-object fairness", fairnessChecks(alg, cfg))

	// 7. Codec round-trip: the canonical binary encoding is lossless and
	// canonical on everything drained runs reach — ops, return values,
	// effectors and replica states — and converged replicas encode
	// byte-equal.
	add("codec round-trip", codecChecks(alg, cfg))

	// 8. Client refinement.
	if cfg.Client == "" {
		skip("contextual refinement (Thm 7)", "no client program supplied")
	} else {
		add("contextual refinement (Thm 7)", clientRefinement(alg, cfg.Client))
	}
	return rep
}

// traceChecks runs the per-trace conditions; exhaustive switches to the
// complete deciders on short two-node traces.
func traceChecks(alg registry.Algorithm, cfg Config, exhaustive bool) error {
	nodes, steps, seeds := cfg.Nodes, cfg.Steps, cfg.Seeds
	if exhaustive {
		nodes, steps = 2, 8
		if seeds > 4 {
			seeds = 4
		}
	}
	p := core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		w := sim.Workload{
			Object: alg.New(), Abs: alg.Abs, Gen: sim.GenFunc(alg.GenOp),
			Nodes: nodes, Steps: steps, Causal: alg.NeedsCausal,
		}
		tr := w.Run(seed).Trace()
		var res core.Result
		var err error
		switch {
		case alg.IsX() && exhaustive:
			res, err = core.CheckXACC(tr, core.XProblem{Problem: p, XSpec: alg.XSpec})
		case alg.IsX():
			res, err = core.CheckXACCWitness(tr, core.XProblem{Problem: p, XSpec: alg.XSpec})
		case exhaustive:
			res, err = core.CheckACC(tr, p)
		default:
			res, err = core.CheckACCWitness(tr, p, alg.TSOrder)
		}
		if err != nil {
			if exhaustive {
				continue // trace exceeded the decidable bound
			}
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if !res.OK {
			return fmt.Errorf("seed %d: %s", seed, res.Reason)
		}
		if err := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	return nil
}

// exploreChecks runs the parallel schedule explorer over every delivery
// interleaving of small generated scripts, requiring convergence at each
// terminal state (SEC, universally quantified over schedules) and exactly the
// terminal-state set the sequential oracle reaches.
func exploreChecks(alg registry.Algorithm, cfg Config) error {
	const nodes, ops = 2, 4 // complete exploration needs small scripts
	seeds := cfg.Seeds
	if seeds > 3 {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, seed, alg.NeedsCausal)
		want := map[string]bool{}
		if _, err := sim.ExploreSchedules(alg.New(), nodes, script, alg.NeedsCausal, 0, func(c *sim.Cluster) error {
			want[string(c.AppendBinary(nil))] = true
			return nil
		}); err != nil {
			return fmt.Errorf("seed %d: sequential oracle: %w", seed, err)
		}
		got := map[string]bool{}
		_, _, err := sim.ExploreSchedulesParallel(alg.New(), nodes, script, alg.NeedsCausal,
			sim.ParallelConfig{Workers: cfg.Workers}, func(c *sim.Cluster) error {
				if _, ok := c.Converged(alg.Abs); !ok {
					return fmt.Errorf("replicas diverged at quiescence")
				}
				got[string(c.AppendBinary(nil))] = true
				return nil
			})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if len(got) != len(want) {
			return fmt.Errorf("seed %d: parallel explorer reached %d terminal states, oracle %d", seed, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				return fmt.Errorf("seed %d: parallel explorer missed a terminal state of the oracle", seed)
			}
		}
	}
	return nil
}

// chaosChecks runs the fault-injection convergence battery item: for each
// seed it generates a script and a fault plan, executes the chaos run, and
// requires a well-formed trace, SEC convergence of the live replicas after
// heal-and-drain (the Lemma 5 guarantee under network pathology), the
// trace-level CvT property, and — on the first seed — byte-for-byte replay
// determinism of the whole run. An algorithm whose effectors are not
// tolerant to the reordering the paper's setting permits, or whose
// duplicates escape the at-most-once delivery layer, diverges here.
func chaosChecks(alg registry.Algorithm, cfg Config) error {
	const nodes = 3
	ops := cfg.Steps / 4
	if ops < 6 {
		ops = 6
	}
	if ops > 12 {
		ops = 12
	}
	seeds := cfg.ChaosSeeds
	if seeds == 0 {
		seeds = cfg.Seeds
		if seeds > 4 {
			seeds = 4
		}
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, seed, alg.NeedsCausal)
		plan := sim.GenFaultPlan(seed, nodes, 2*ops)
		run := func() (*sim.ChaosReport, error) {
			return sim.Chaos{
				Object: alg.New(), Abs: alg.Abs, Script: script, Plan: plan,
				Nodes: nodes, Seed: seed, Causal: alg.NeedsCausal,
				Decode: alg.DecodeEffector,
			}.Run()
		}
		rep, err := run()
		if err != nil {
			return fmt.Errorf("seed %d (plan %s): %w", seed, plan, err)
		}
		if err := rep.Trace.CheckWellFormed(); err != nil {
			return fmt.Errorf("seed %d (plan %s): %w", seed, plan, err)
		}
		if alg.NeedsCausal && !rep.Trace.CausalDelivery() {
			return fmt.Errorf("seed %d (plan %s): faulted run violated causal delivery", seed, plan)
		}
		if _, ok := rep.Cluster.Converged(alg.Abs); !ok {
			return fmt.Errorf("seed %d (plan %s): replicas diverged after faults healed:\n%s",
				seed, plan, core.DivergenceReport(rep.Trace, alg.New().Init(), alg.Abs))
		}
		if err := core.CheckConvergenceFrom(rep.Trace, alg.New().Init(), alg.Abs); err != nil {
			return fmt.Errorf("seed %d (plan %s): %w", seed, plan, err)
		}
		if seed == 1 {
			rep2, err := run()
			if err != nil {
				return fmt.Errorf("seed %d replay: %w", seed, err)
			}
			if rep2.Trace.String() != rep.Trace.String() || rep2.Stats != rep.Stats || rep2.Ticks != rep.Ticks {
				return fmt.Errorf("seed %d (plan %s): chaos run is not reproducible from (script, seed, plan)", seed, plan)
			}
		}
	}
	return nil
}

// snapshotChecks runs the snapshot-recovery battery item: the same
// (script, seed, plan) chaos workload executes twice — once resyncing fresh
// replicas by full log replay, once with snapshot checkpoints enabled
// (stable-frontier snapshots through the registered state codec, broadcast-log
// truncation up to the checkpoint frontier, snapshot-based resync). Both runs
// must converge, and to byte-identical canonical per-node states: recovering
// from a decoded snapshot plus the retained log suffix is observationally
// equivalent to replaying the whole log. The plan is forced to contain a
// fresh-crash window so the resync path actually runs, and across the seeds
// the snapshot runs must have checkpointed, truncated log entries, and served
// at least one resync from a snapshot.
func snapshotChecks(alg registry.Algorithm, cfg Config) error {
	if alg.DecodeState == nil {
		return fmt.Errorf("algorithm bundle registers no state decoder")
	}
	const nodes = 3
	ops := cfg.Steps / 4
	if ops < 6 {
		ops = 6
	}
	if ops > 12 {
		ops = 12
	}
	seeds := cfg.ChaosSeeds
	if seeds == 0 {
		seeds = cfg.Seeds
		if seeds > 4 {
			seeds = 4
		}
	}
	var checkpoints, truncated int
	for seed := int64(1); seed <= int64(seeds); seed++ {
		script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, seed, alg.NeedsCausal)
		plan := sim.GenFaultPlan(seed, nodes, 2*ops)
		// Deterministically force a fresh-crash window: without one neither
		// resync flavour runs and the item would compare nothing.
		if len(plan.Crashes) == 0 {
			plan.Crashes = append(plan.Crashes, sim.CrashWindow{Node: 1, From: ops / 2, To: ops, Fresh: true})
		} else {
			plan.Crashes[0].Fresh = true
		}
		run := func(snapEvery int) (*sim.ChaosReport, error) {
			w := sim.Chaos{
				Object: alg.New(), Abs: alg.Abs, Script: script, Plan: plan,
				Nodes: nodes, Seed: seed, Causal: alg.NeedsCausal,
				Decode: alg.DecodeEffector,
			}
			if snapEvery > 0 {
				w.SnapshotEvery = snapEvery
				w.DecodeState = alg.DecodeState
			}
			return w.Run()
		}
		base, err := run(0)
		if err != nil {
			return fmt.Errorf("seed %d (plan %s): log-replay run: %w", seed, plan, err)
		}
		snap, err := run(3)
		if err != nil {
			return fmt.Errorf("seed %d (plan %s): snapshot run: %w", seed, plan, err)
		}
		if _, ok := base.Cluster.Converged(alg.Abs); !ok {
			return fmt.Errorf("seed %d (plan %s): log-replay run diverged:\n%s",
				seed, plan, core.DivergenceReport(base.Trace, alg.New().Init(), alg.Abs, notes(base.Cluster)...))
		}
		if _, ok := snap.Cluster.Converged(alg.Abs); !ok {
			return fmt.Errorf("seed %d (plan %s): snapshot run diverged:\n%s",
				seed, plan, core.DivergenceReport(snap.Trace, alg.New().Init(), alg.Abs, notes(snap.Cluster)...))
		}
		for t := 0; t < nodes; t++ {
			b := base.Cluster.StateOf(model.NodeID(t)).AppendBinary(nil)
			s := snap.Cluster.StateOf(model.NodeID(t)).AppendBinary(nil)
			if !bytes.Equal(b, s) {
				return fmt.Errorf("seed %d (plan %s): node %d's canonical state differs between snapshot recovery and log replay",
					seed, plan, t)
			}
		}
		checkpoints += snap.Stats.Checkpoints
		truncated += snap.Stats.LogTruncated
	}
	if checkpoints == 0 {
		return fmt.Errorf("no snapshot run ever checkpointed — the stable frontier never advanced")
	}
	if truncated == 0 {
		return fmt.Errorf("snapshot runs checkpointed but never truncated the broadcast log")
	}
	// Generated crash windows may close before the first checkpoint, in which
	// case the resync above legally fell back to log replay. A deterministic
	// mid-script crash guarantees the snapshot path itself is exercised: the
	// crash happens after a full drain, so the frontier provably covers the
	// first half of the script.
	return snapshotResyncScenario(alg)
}

// snapshotResyncScenario crashes a replica mid-script on two otherwise
// identical clusters — one with snapshot checkpoints, one without — recovers
// it fresh, and requires byte-identical canonical states plus stats proving
// the snapshot cluster served the resync from a decoded snapshot.
func snapshotResyncScenario(alg registry.Algorithm) error {
	const nodes, ops, seed = 3, 12, 7
	crash := model.NodeID(nodes - 1)
	script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, seed, alg.NeedsCausal)
	mk := func(snapshots bool) *sim.Cluster {
		opts := []sim.Option{sim.WithWireCodec(alg.DecodeEffector)}
		if alg.NeedsCausal {
			opts = append(opts, sim.WithCausalDelivery())
		}
		if snapshots {
			opts = append(opts, sim.WithSnapshots(3, alg.DecodeState))
		}
		return sim.NewCluster(alg.New(), nodes, opts...)
	}
	run := func(c *sim.Cluster) error {
		half := len(script) / 2
		for _, so := range script[:half] {
			if _, _, err := c.Invoke(so.Node, so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
				return err
			}
			c.DeliverAll()
		}
		if err := c.Crash(crash); err != nil {
			return err
		}
		for _, so := range script[half:] {
			if so.Node == crash {
				continue
			}
			if _, _, err := c.Invoke(so.Node, so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
				return err
			}
		}
		c.DeliverAll()
		if err := c.Recover(crash, true); err != nil {
			return err
		}
		c.DeliverAll()
		return nil
	}
	snap, replay := mk(true), mk(false)
	if err := run(snap); err != nil {
		return fmt.Errorf("snapshot cluster: %w", err)
	}
	if err := run(replay); err != nil {
		return fmt.Errorf("log-replay cluster: %w", err)
	}
	for t := 0; t < nodes; t++ {
		b := replay.StateOf(model.NodeID(t)).AppendBinary(nil)
		s := snap.StateOf(model.NodeID(t)).AppendBinary(nil)
		if !bytes.Equal(b, s) {
			return fmt.Errorf("node %d's canonical state differs between snapshot resync and log replay", t)
		}
	}
	st := snap.FaultStats()
	if st.SnapshotResyncs != 1 {
		return fmt.Errorf("snapshot resyncs = %d, want the fresh recovery served from a snapshot", st.SnapshotResyncs)
	}
	if st.Checkpoints == 0 || st.LogTruncated == 0 {
		return fmt.Errorf("snapshot cluster never checkpointed and truncated (stats %+v)", st)
	}
	return nil
}

// batchedChecks runs the batched-transport battery item: each seed's script
// replicates across transport.Peer replicas on a shared deterministic Mem,
// but through write-batching endpoints with a different flush policy per
// node — a tight frame cap, a byte cap, and no batching at all. At
// quiescence every replica must hold the byte-identical canonical state
// (batching must not change replication semantics), an identical rerun must
// reproduce the exact states and transport stats (batched executions stay
// deterministic), and the counters must balance: every queued frame reaches
// every peer, and a capped policy actually coalesces (fewer flushes than
// frames) rather than degenerating to frame-at-a-time writes.
func batchedChecks(alg registry.Algorithm, cfg Config) error {
	const nodes = 3
	ops := cfg.Steps / 4
	if ops < 6 {
		ops = 6
	}
	if ops > 12 {
		ops = 12
	}
	seeds := cfg.Seeds
	if seeds > 3 {
		seeds = 3
	}
	policies := [nodes]transport.BatchPolicy{
		{MaxFrames: 2},
		{MaxFrames: 64, MaxBytes: 96},
		{}, // unbatched control
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, seed, alg.NeedsCausal)
		run := func() ([][]byte, []transport.Stats, error) {
			m := transport.NewMem(nodes)
			peers := make([]*transport.Peer, nodes)
			for i := range peers {
				peers[i] = transport.NewPeer(alg.New(), alg.DecodeEffector,
					m.BatchedEndpoint(model.NodeID(i), policies[i]), alg.NeedsCausal)
			}
			sched := rand.New(rand.NewSource(seed))
			for _, so := range script {
				if _, err := peers[so.Node].Invoke(so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
					return nil, nil, fmt.Errorf("invoke %v at %s: %w", so.Op, so.Node, err)
				}
				// Vary visibility: random peers make receive progress between
				// invocations, from the same seeded source both runs share.
				for k := sched.Intn(3); k > 0; k-- {
					if _, err := peers[sched.Intn(nodes)].Step(false); err != nil {
						return nil, nil, err
					}
				}
			}
			for _, p := range peers {
				if err := p.Done(); err != nil {
					return nil, nil, err
				}
			}
			states := make([][]byte, nodes)
			stats := make([]transport.Stats, nodes)
			for i, p := range peers {
				if err := p.RunToQuiescence(5 * time.Second); err != nil {
					return nil, nil, fmt.Errorf("peer %d: %w", i, err)
				}
				states[i] = p.CanonicalState()
				st, ok := p.TransportStats()
				if !ok {
					return nil, nil, fmt.Errorf("peer %d: batched endpoint reports no stats", i)
				}
				stats[i] = st
			}
			return states, stats, nil
		}
		states, stats, err := run()
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		for i := 1; i < nodes; i++ {
			if !bytes.Equal(states[i], states[0]) {
				return fmt.Errorf("seed %d: batched peer %d's canonical state differs from peer 0's", seed, i)
			}
		}
		for i, st := range stats {
			if got, want := st.TotalSent().Frames, st.FramesQueued*(nodes-1); got != want {
				return fmt.Errorf("seed %d: peer %d flushed %d per-peer frames for %d queued — a pending batch was lost",
					seed, i, got, want)
			}
		}
		// The tight frame cap on peer 0 must have coalesced: with ≥2 frames
		// queued, at least one flush carried more than one frame.
		if st := stats[0]; st.FramesQueued >= 2 && st.Flushes.Total() >= st.FramesQueued {
			return fmt.Errorf("seed %d: capped policy never coalesced (%d flushes for %d frames)",
				seed, st.Flushes.Total(), st.FramesQueued)
		}
		states2, stats2, err := run()
		if err != nil {
			return fmt.Errorf("seed %d rerun: %w", seed, err)
		}
		for i := range states {
			if !bytes.Equal(states[i], states2[i]) {
				return fmt.Errorf("seed %d: batched run is not deterministic — peer %d's state differs on rerun", seed, i)
			}
		}
		if !reflect.DeepEqual(stats, stats2) {
			return fmt.Errorf("seed %d: batched run is not deterministic — transport stats differ on rerun", seed)
		}
	}
	return nil
}

// socketSnapshotChecks runs the socket snapshot catch-up battery item: two
// peers of a three-node unix-socket mesh replicate their script share,
// exchange Dones (running their final pre-join compaction), and only then is
// the third peer admitted — a late joiner that catches up through the
// transport's snapshot protocol before replicating its own share. The mesh
// runs three times: compacting (SnapshotPolicy Every=3, so the joiner is
// served a stable checkpoint plus the retained suffix), full-replay (Every=0,
// the whole log ships as suffix), and the compacting leg again. All runs must
// reach one byte-identical canonical state on every peer: state transfer is
// observationally equivalent to full log replay, deterministically so.
//
// The cross-leg comparison is sound because every peer invokes its whole
// share before making any receive progress: each effector then depends only
// on its node's own prior ops, so all legs generate the identical effector
// set and the converged canonical encodings must match byte for byte.
//
// Compaction assertions are gated on each early peer having issued at least
// one effectful frame: connection FIFO puts a peer's effectors before its
// Done, so the Done-triggered compaction at the other early peer then always
// finds them acknowledged and truncates — and both served checkpoints are
// non-empty, so the joiner installs covered frames whichever peer answers
// first.
func socketSnapshotChecks(alg registry.Algorithm, cfg Config) error {
	if alg.DecodeState == nil {
		return fmt.Errorf("algorithm bundle registers no state decoder")
	}
	const nodes = 3
	ops := cfg.Steps / 4
	if ops < 6 {
		ops = 6
	}
	if ops > 12 {
		ops = 12
	}
	script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, 5, alg.NeedsCausal)
	joiner := model.NodeID(nodes - 1)

	run := func(every int) (states [][]byte, stats []transport.SnapStats, issued []int, err error) {
		dir, err := os.MkdirTemp("", "crdt-snap-*")
		if err != nil {
			return nil, nil, nil, err
		}
		defer os.RemoveAll(dir)
		addrs := make([]string, nodes)
		for i := range addrs {
			addrs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("n%d.sock", i))
		}
		states = make([][]byte, nodes)
		stats = make([]transport.SnapStats, nodes)
		issued = make([]int, nodes)
		errs := make([]error, nodes)
		// Each early peer reports in once before the join — nil after its
		// pre-join compaction, or its failure, which aborts the join instead
		// of deadlocking it. The buffer leaves room for a second, post-join
		// failure report per peer.
		ready := make(chan error, 2*(nodes-1))
		var wg sync.WaitGroup
		early := func(id model.NodeID) {
			defer wg.Done()
			reported := false
			err := func() error {
				st, err := transport.Listen(id, addrs,
					transport.WithRecvTimeout(5*time.Second), transport.WithLateJoiners(joiner))
				if err != nil {
					return err
				}
				defer st.Close()
				p := transport.NewPeer(alg.New(), alg.DecodeEffector, st, alg.NeedsCausal,
					transport.WithSnapshotPolicy(transport.SnapshotPolicy{Every: every}))
				for _, so := range script {
					if so.Node != id {
						continue
					}
					if _, err := p.Invoke(so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
						return err
					}
				}
				if err := p.Done(); err != nil {
					return err
				}
				// Hold the join until this peer has the other early peer's
				// Done: its final pre-join compaction has run by then.
				for p.DonePeers() < 1 {
					if _, err := p.Step(true); err != nil {
						return err
					}
				}
				reported = true
				ready <- nil
				if err := p.RunToQuiescence(10 * time.Second); err != nil {
					return err
				}
				states[id] = p.CanonicalState()
				stats[id] = p.SnapshotStats()
				issued[id] = p.Issued()
				return nil
			}()
			if err != nil {
				errs[id] = err
				if !reported {
					ready <- err
				}
			}
		}
		wg.Add(nodes)
		for i := 0; i < int(joiner); i++ {
			go early(model.NodeID(i))
		}
		go func() {
			defer wg.Done()
			errs[joiner] = func() error {
				for i := 0; i < nodes-1; i++ {
					if err := <-ready; err != nil {
						return fmt.Errorf("early peer failed before the join: %w", err)
					}
				}
				st, err := transport.Listen(joiner, addrs,
					transport.WithRecvTimeout(5*time.Second), transport.AsLateJoiner())
				if err != nil {
					return err
				}
				defer st.Close()
				p := transport.NewPeer(alg.New(), alg.DecodeEffector, st, alg.NeedsCausal,
					transport.WithCatchUp(alg.DecodeState))
				if err := p.CatchUp(); err != nil {
					return err
				}
				if err := p.AwaitCatchUp(10 * time.Second); err != nil {
					return err
				}
				for _, so := range script {
					if so.Node != joiner {
						continue
					}
					if _, err := p.Invoke(so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
						return err
					}
				}
				if err := p.Done(); err != nil {
					return err
				}
				if err := p.RunToQuiescence(10 * time.Second); err != nil {
					return err
				}
				states[joiner] = p.CanonicalState()
				stats[joiner] = p.SnapshotStats()
				issued[joiner] = p.Issued()
				return nil
			}()
		}()
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				return nil, nil, nil, fmt.Errorf("peer %d: %w", id, err)
			}
		}
		for id, s := range states {
			if !bytes.Equal(s, states[0]) {
				return nil, nil, nil, fmt.Errorf("peer %d's canonical state differs from peer 0's", id)
			}
		}
		return states, stats, issued, nil
	}

	base, _, _, err := run(0)
	if err != nil {
		return fmt.Errorf("full-replay leg: %w", err)
	}
	snap, stats, issued, err := run(3)
	if err != nil {
		return fmt.Errorf("compacting leg: %w", err)
	}
	if !bytes.Equal(snap[0], base[0]) {
		return fmt.Errorf("snapshot catch-up and full log replay converged to different canonical states")
	}
	js := stats[joiner]
	if !js.Installed || js.FellBack {
		return fmt.Errorf("joiner never installed a snapshot response: %+v", js)
	}
	if issued[0] > 0 && issued[1] > 0 {
		if js.InstallCovered == 0 {
			return fmt.Errorf("compacting leg installed no covered frames: %+v", js)
		}
		for id := 0; id < nodes-1; id++ {
			if es := stats[id]; es.Checkpoints == 0 || es.LogTruncated == 0 {
				return fmt.Errorf("early peer %d never compacted its log: %+v", id, es)
			}
		}
	}
	rerun, _, _, err := run(3)
	if err != nil {
		return fmt.Errorf("compacting rerun: %w", err)
	}
	if !bytes.Equal(rerun[0], snap[0]) {
		return fmt.Errorf("compacting leg is not deterministic: rerun converged to a different canonical state")
	}
	return nil
}

// multiObjectChecks runs the multi-object mesh battery item: four replicated
// objects of mixed algorithms — the algorithm under test, a second standalone
// algorithm, and two components a product object reassembles at read time —
// share one transport endpoint per node through the transport.Node demux, on
// a three-node mesh. The item runs over write-batching Mem endpoints with a
// different flush policy per node, then three times over a live unix-socket
// mesh whose third peer is a late joiner that snapshot-catches-up on every
// object through the one shared socket pair: with the legacy pull loop, with
// the receive pipeline on a single apply shard, and with the pipeline on
// four shards applying distinct objects concurrently. All three socket legs
// must converge to byte-identical canonical states — object sharding
// reorders apply across objects only, never within one, so the quiescent
// states cannot differ.
//
// Every leg requires byte-identical per-object canonical states on every
// node, the read-time product reassembled from its independently replicated
// components byte-equal everywhere, and the stats balance invariant: the
// per-object frame counters sum exactly to the per-peer wire totals, because
// one helper updates both views of the same frame. The socket legs
// additionally require exactly one connection per process pair (objects
// multiply the traffic, not the sockets), a per-object snapshot install for
// the joiner (no fallback), a balanced receive-pipeline ledger on every
// pipelined node (received == dispatched == applied), and — when both early
// peers issued frames for an object — a compacted broadcast log for that
// object on both of them.
func multiObjectChecks(alg registry.Algorithm, cfg Config) error {
	if alg.DecodeState == nil {
		return fmt.Errorf("algorithm bundle registers no state decoder")
	}
	const nodes = 3
	joiner := model.NodeID(nodes - 1)
	ops := cfg.Steps / 8
	if ops < 4 {
		ops = 4
	}
	if ops > 8 {
		ops = 8
	}
	// Mixed algorithms: the algorithm under test plus a standalone companion
	// of a different kind, and the two product components.
	companion := "counter"
	if alg.Name == companion {
		companion = "lww-register"
	}
	kinds := []string{alg.Name, companion, "counter", "g-set"}
	man := transport.Manifest{
		{ID: 1, Name: "subject", Kind: kinds[0]},
		{ID: 2, Name: "companion", Kind: kinds[1]},
		{ID: 3, Name: "cart.qty", Kind: kinds[2]},
		{ID: 4, Name: "cart.items", Kind: kinds[3]},
	}
	algs := make([]registry.Algorithm, len(man))
	scripts := make([]sim.Script, len(man))
	for oi, ospec := range man {
		a, ok := registry.ByName(ospec.Kind)
		if !ok {
			return fmt.Errorf("object %d: no algorithm %q in the registry", ospec.ID, ospec.Kind)
		}
		algs[oi] = a
		scripts[oi] = sim.GenScript(a.New(), a.Abs, sim.GenFunc(a.GenOp), nodes, ops, 20+int64(oi), a.NeedsCausal)
	}
	register := func(n *transport.Node, opts func(oi int) []transport.PeerOption) error {
		for oi, ospec := range man {
			if _, err := n.Register(ospec.ID, algs[oi].New(), algs[oi].DecodeEffector, algs[oi].NeedsCausal, opts(oi)...); err != nil {
				return err
			}
		}
		return nil
	}
	// checkConverged asserts the per-object and reassembled-product
	// convergence shared by both legs; states is indexed [node][object].
	checkConverged := func(states [][][]byte) error {
		for oi, ospec := range man {
			for id := 1; id < nodes; id++ {
				if !bytes.Equal(states[id][oi], states[0][oi]) {
					return fmt.Errorf("object %d (%s): node %d's canonical state differs from node 0's", ospec.ID, ospec.Kind, id)
				}
			}
		}
		var cart0 []byte
		for id := 0; id < nodes; id++ {
			cart := codec.AppendBytes(nil, states[id][2])
			cart = codec.AppendBytes(cart, states[id][3])
			if id == 0 {
				cart0 = cart
			} else if !bytes.Equal(cart, cart0) {
				return fmt.Errorf("node %d: product reassembled from objects 3+4 differs from node 0's", id)
			}
		}
		return nil
	}
	// checkBalance asserts the object-sum == per-peer-total stats invariant.
	checkBalance := func(id int, st transport.Stats) error {
		var sent, recv int
		for _, io := range st.Objects {
			sent += io.SentFrames
			recv += io.RecvFrames
		}
		if sent != st.TotalSent().Frames || recv != st.TotalRecv().Frames {
			return fmt.Errorf("node %d: per-object frame counters (sent %d, recv %d) do not sum to the per-peer totals (sent %d, recv %d)",
				id, sent, recv, st.TotalSent().Frames, st.TotalRecv().Frames)
		}
		return nil
	}

	// Leg 1: shared-memory mesh, mixed flush policies, every object's
	// operations interleaved through the shared batched endpoints.
	memLeg := func() error {
		policies := [nodes]transport.BatchPolicy{
			{MaxFrames: 2},
			{MaxFrames: 64, MaxBytes: 96},
			{}, // unbatched control
		}
		m := transport.NewMem(nodes)
		ns := make([]*transport.Node, nodes)
		for i := range ns {
			n, err := transport.NewNode(m.BatchedEndpoint(model.NodeID(i), policies[i]), man)
			if err != nil {
				return err
			}
			if err := register(n, func(int) []transport.PeerOption { return nil }); err != nil {
				return err
			}
			ns[i] = n
		}
		sched := rand.New(rand.NewSource(21))
		for so := 0; so < ops; so++ {
			for oi, ospec := range man {
				if so >= len(scripts[oi]) {
					continue
				}
				sop := scripts[oi][so]
				p, _ := ns[sop.Node].Peer(ospec.ID)
				if _, err := p.Invoke(sop.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
					return fmt.Errorf("object %d: invoke %v at %s: %w", ospec.ID, sop.Op, sop.Node, err)
				}
				for k := sched.Intn(3); k > 0; k-- {
					if _, err := ns[sched.Intn(nodes)].Step(false); err != nil {
						return err
					}
				}
			}
		}
		for _, n := range ns {
			for _, id := range n.Objects() {
				p, _ := n.Peer(id)
				if err := p.Done(); err != nil {
					return err
				}
			}
		}
		states := make([][][]byte, nodes)
		for i, n := range ns {
			if err := n.RunToQuiescence(5 * time.Second); err != nil {
				return fmt.Errorf("node %d: %w", i, err)
			}
			states[i] = make([][]byte, len(man))
			for oi, ospec := range man {
				p, _ := n.Peer(ospec.ID)
				states[i][oi] = p.CanonicalState()
			}
		}
		if err := checkConverged(states); err != nil {
			return err
		}
		for i, n := range ns {
			if err := checkBalance(i, n.Transport().(transport.StatsReporter).Stats()); err != nil {
				return err
			}
		}
		return nil
	}

	// Legs 2-4: live unix-socket mesh with a late joiner catching up on every
	// object over the one shared socket pair per process pair. rp selects the
	// receive side: the zero policy is the legacy pull loop, Workers >= 1 the
	// parallel pipeline. Returns the per-node per-object canonical states so
	// the pipeline legs can be checked byte-identical against the legacy one.
	unixLeg := func(rp transport.RecvPolicy) ([][][]byte, error) {
		dir, err := os.MkdirTemp("", "crdt-multiobj-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		addrs := make([]string, nodes)
		for i := range addrs {
			addrs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("n%d.sock", i))
		}
		states := make([][][]byte, nodes)
		snaps := make([][]transport.SnapStats, nodes)
		issued := make([][]int, nodes)
		wire := make([]transport.Stats, nodes)
		conns := make([]int, nodes)
		errs := make([]error, nodes)
		ready := make(chan error, 2*(nodes-1))
		record := func(id model.NodeID, st *transport.Stream, n *transport.Node) {
			states[id] = make([][]byte, len(man))
			snaps[id] = make([]transport.SnapStats, len(man))
			issued[id] = make([]int, len(man))
			for oi, ospec := range man {
				p, _ := n.Peer(ospec.ID)
				states[id][oi] = p.CanonicalState()
				snaps[id][oi] = p.SnapshotStats()
				issued[id][oi] = p.Issued()
			}
			wire[id] = st.Stats()
			conns[id] = len(st.ConnectedPeers())
		}
		// checkPipeline closes the endpoint (idempotent — the deferred Close
		// becomes a no-op), waits for the pump to drain the frame queue and
		// stop, and only then audits the ledger: every frame the wire counted
		// received must have been dispatched to exactly one shard and applied.
		// Sampling before the pipeline stops would race in-flight frames.
		checkPipeline := func(n *transport.Node, st *transport.Stream) error {
			r := n.Receiver()
			if r == nil {
				return nil
			}
			st.Close()
			select {
			case <-r.Done():
			case <-time.After(10 * time.Second):
				return errors.New("receive pipeline did not stop after Close")
			}
			if err := r.Err(); err != nil {
				return fmt.Errorf("receive pipeline: %w", err)
			}
			return r.Stats().Balance(st.Stats().TotalRecv().Frames)
		}
		var wg sync.WaitGroup
		early := func(id model.NodeID) {
			defer wg.Done()
			reported := false
			err := func() error {
				sopts := []transport.StreamOption{
					transport.WithRecvTimeout(5 * time.Second), transport.WithLateJoiners(joiner),
					transport.WithManifest(man), transport.WithBatching(transport.BatchPolicy{MaxFrames: 4}),
				}
				if rp.Workers > 0 {
					sopts = append(sopts, transport.WithReceiver(rp))
				}
				st, err := transport.Listen(id, addrs, sopts...)
				if err != nil {
					return err
				}
				defer st.Close()
				n, err := transport.NewNode(st, man)
				if err != nil {
					return err
				}
				if err := register(n, func(int) []transport.PeerOption {
					return []transport.PeerOption{transport.WithSnapshotPolicy(transport.SnapshotPolicy{Every: 3})}
				}); err != nil {
					return err
				}
				if rp.Workers > 0 {
					if _, err := n.StartReceiver(); err != nil {
						return err
					}
				}
				for oi, ospec := range man {
					for _, so := range scripts[oi] {
						if so.Node != id {
							continue
						}
						p, _ := n.Peer(ospec.ID)
						if _, err := p.Invoke(so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
							return err
						}
					}
				}
				for _, obj := range n.Objects() {
					p, _ := n.Peer(obj)
					if err := p.Done(); err != nil {
						return err
					}
				}
				// Hold the join until every object has the other early peer's
				// Done: each object's final pre-join compaction has run then.
				// With the pipeline the shards apply in the background, so wait
				// on the predicate; without it, pull frames ourselves.
				doneEverywhere := func() bool {
					for _, obj := range n.Objects() {
						p, _ := n.Peer(obj)
						if p.DonePeers() < 1 {
							return false
						}
					}
					return true
				}
				if n.Receiver() != nil {
					if err := n.Await(10*time.Second, doneEverywhere); err != nil {
						return err
					}
				} else {
					for !doneEverywhere() {
						if _, err := n.Step(true); err != nil {
							return err
						}
					}
				}
				reported = true
				ready <- nil
				if err := n.RunToQuiescence(10 * time.Second); err != nil {
					return err
				}
				if err := checkPipeline(n, st); err != nil {
					return err
				}
				record(id, st, n)
				return nil
			}()
			if err != nil {
				errs[id] = err
				if !reported {
					ready <- err
				}
			}
		}
		wg.Add(nodes)
		for i := 0; i < int(joiner); i++ {
			go early(model.NodeID(i))
		}
		go func() {
			defer wg.Done()
			errs[joiner] = func() error {
				for i := 0; i < nodes-1; i++ {
					if err := <-ready; err != nil {
						return fmt.Errorf("early peer failed before the join: %w", err)
					}
				}
				sopts := []transport.StreamOption{
					transport.WithRecvTimeout(5 * time.Second), transport.AsLateJoiner(),
					transport.WithManifest(man),
				}
				if rp.Workers > 0 {
					sopts = append(sopts, transport.WithReceiver(rp))
				}
				st, err := transport.Listen(joiner, addrs, sopts...)
				if err != nil {
					return err
				}
				defer st.Close()
				n, err := transport.NewNode(st, man)
				if err != nil {
					return err
				}
				if err := register(n, func(oi int) []transport.PeerOption {
					return []transport.PeerOption{transport.WithCatchUp(algs[oi].DecodeState)}
				}); err != nil {
					return err
				}
				if rp.Workers > 0 {
					if _, err := n.StartReceiver(); err != nil {
						return err
					}
				}
				if err := n.CatchUp(); err != nil {
					return err
				}
				if err := n.AwaitCatchUp(10 * time.Second); err != nil {
					return err
				}
				for oi, ospec := range man {
					for _, so := range scripts[oi] {
						if so.Node != joiner {
							continue
						}
						p, _ := n.Peer(ospec.ID)
						if _, err := p.Invoke(so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
							return err
						}
					}
				}
				for _, obj := range n.Objects() {
					p, _ := n.Peer(obj)
					if err := p.Done(); err != nil {
						return err
					}
				}
				if err := n.RunToQuiescence(10 * time.Second); err != nil {
					return err
				}
				if err := checkPipeline(n, st); err != nil {
					return err
				}
				record(joiner, st, n)
				return nil
			}()
		}()
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("peer %d: %w", id, err)
			}
		}
		if err := checkConverged(states); err != nil {
			return nil, err
		}
		for id := 0; id < nodes; id++ {
			if conns[id] != nodes-1 {
				return nil, fmt.Errorf("node %d holds %d connections for %d peers — objects must share one socket pair per process pair",
					id, conns[id], nodes-1)
			}
			if err := checkBalance(id, wire[id]); err != nil {
				return nil, err
			}
		}
		for oi, ospec := range man {
			js := snaps[joiner][oi]
			if !js.Installed || js.FellBack {
				return nil, fmt.Errorf("object %d (%s): joiner never installed a snapshot response: %+v", ospec.ID, ospec.Kind, js)
			}
			if issued[0][oi] > 0 && issued[1][oi] > 0 {
				for id := 0; id < nodes-1; id++ {
					if es := snaps[id][oi]; es.Checkpoints == 0 || es.LogTruncated == 0 {
						return nil, fmt.Errorf("object %d (%s): early peer %d never compacted its log: %+v", ospec.ID, ospec.Kind, id, es)
					}
				}
			}
		}
		return states, nil
	}

	if err := memLeg(); err != nil {
		return fmt.Errorf("mem leg: %w", err)
	}
	legacy, err := unixLeg(transport.RecvPolicy{})
	if err != nil {
		return fmt.Errorf("unix leg (legacy pull loop): %w", err)
	}
	// The pipeline legs rerun the same scripts; concurrency across objects
	// must not change any object's outcome, so every canonical state has to
	// match the legacy leg's byte for byte.
	for _, workers := range []int{1, 4} {
		piped, err := unixLeg(transport.RecvPolicy{Workers: workers})
		if err != nil {
			return fmt.Errorf("unix leg (pipeline workers=%d): %w", workers, err)
		}
		for id := range piped {
			for oi, ospec := range man {
				if !bytes.Equal(piped[id][oi], legacy[id][oi]) {
					return fmt.Errorf("unix leg (pipeline workers=%d): node %d object %d (%s) canonical state diverges from the legacy pull-loop leg",
						workers, id, ospec.ID, ospec.Kind)
				}
			}
		}
	}
	return nil
}

// fairnessChecks runs the per-object fairness battery item: a chatty object
// (the algorithm under test) and a quiet companion share scheduled transport
// endpoints — per-object send queues drained by deficit-weighted round-robin,
// with per-object max-delay overrides. Two legs:
//
// The Mem leg runs three nodes with a different scheduler policy each (8:1
// weighted chunked, evenly weighted, and an unscheduled FIFO control) under
// cap-forced flushes, and requires byte-identical per-object convergence, the
// per-object frame counters summing to the per-peer wire totals, the
// scheduler's queued == drained + depth ledger balancing on every node, and a
// rerun reproducing both the states and the full stats snapshot byte-for-byte
// — weighted scheduling must not cost the deterministic-replay guarantee.
//
// The unix leg runs a live three-node socket mesh whose shared batch policy
// never flushes on its own (huge frame cap, no shared delay): each node first
// invokes its chatty ops — which must sit in the chatty send queue — then its
// quiet ops, whose 10ms max-delay override must force exactly the quiet queue
// onto the wire (deadline-flush attribution on the quiet object, chatty
// backlog depth unchanged) while the chatty frames keep waiting for the
// explicit end-of-run flush. Afterwards both objects must converge
// byte-identically, every peer's scheduler ledger and per-object counters
// must balance, and the mesh must still hold one socket pair per process
// pair.
func fairnessChecks(alg registry.Algorithm, cfg Config) error {
	const (
		nodes  = 3
		chatty = transport.ObjID(1)
		quiet  = transport.ObjID(2)
	)
	chattyOps := cfg.Steps / 4
	if chattyOps < 8 {
		chattyOps = 8
	}
	if chattyOps > 12 {
		chattyOps = 12
	}
	const quietOps = 4
	companion := "counter"
	if alg.Name == companion {
		companion = "lww-register"
	}
	man := transport.Manifest{
		{ID: chatty, Name: "chatty", Kind: alg.Name},
		{ID: quiet, Name: "quiet", Kind: companion},
	}
	algs := make([]registry.Algorithm, len(man))
	scripts := make([]sim.Script, len(man))
	opsFor := []int{chattyOps, quietOps}
	for oi, ospec := range man {
		a, ok := registry.ByName(ospec.Kind)
		if !ok {
			return fmt.Errorf("object %d: no algorithm %q in the registry", ospec.ID, ospec.Kind)
		}
		algs[oi] = a
		scripts[oi] = sim.GenScript(a.New(), a.Abs, sim.GenFunc(a.GenOp), nodes, opsFor[oi], 30+int64(oi), a.NeedsCausal)
	}
	register := func(n *transport.Node) error {
		for oi, ospec := range man {
			if _, err := n.Register(ospec.ID, algs[oi].New(), algs[oi].DecodeEffector, algs[oi].NeedsCausal); err != nil {
				return err
			}
		}
		return nil
	}
	checkConverged := func(states [][][]byte) error {
		for oi, ospec := range man {
			for id := 1; id < nodes; id++ {
				if !bytes.Equal(states[id][oi], states[0][oi]) {
					return fmt.Errorf("object %d (%s): node %d's canonical state differs from node 0's", ospec.ID, ospec.Kind, id)
				}
			}
		}
		return nil
	}
	// checkStats asserts both balance invariants a scheduled endpoint owes:
	// per-object frame counters summing to the per-peer wire totals, and the
	// scheduler's own queued == drained + depth ledger.
	checkStats := func(id int, st transport.Stats) error {
		var sent, recv int
		for _, io := range st.Objects {
			sent += io.SentFrames
			recv += io.RecvFrames
		}
		if sent != st.TotalSent().Frames || recv != st.TotalRecv().Frames {
			return fmt.Errorf("node %d: per-object frame counters (sent %d, recv %d) do not sum to the per-peer totals (sent %d, recv %d)",
				id, sent, recv, st.TotalSent().Frames, st.TotalRecv().Frames)
		}
		if err := st.SchedBalance(); err != nil {
			return fmt.Errorf("node %d: %w", id, err)
		}
		return nil
	}

	// Leg 1: deterministic weighted Mem mesh. Scheduling policies differ per
	// node — chunked 8:1, evenly weighted, and a FIFO control — so the DRR
	// drain order genuinely reorders frames relative to arrival, yet a rerun
	// must reproduce every byte of state and every stats counter.
	memLeg := func() ([][][]byte, []transport.Stats, error) {
		batch := [nodes]transport.BatchPolicy{
			{MaxFrames: 3},
			{MaxFrames: 64, MaxBytes: 96},
			{MaxFrames: 2},
		}
		schedPols := [nodes]transport.SchedPolicy{
			{Weights: map[transport.ObjID]int{chatty: 1, quiet: 8}, ChunkFrames: 2},
			{Weights: map[transport.ObjID]int{chatty: 2, quiet: 2}, ChunkFrames: 1},
			{}, // unscheduled FIFO control
		}
		m := transport.NewMem(nodes)
		ns := make([]*transport.Node, nodes)
		for i := range ns {
			n, err := transport.NewNode(m.SchedEndpoint(model.NodeID(i), batch[i], schedPols[i]), man)
			if err != nil {
				return nil, nil, err
			}
			if err := register(n); err != nil {
				return nil, nil, err
			}
			ns[i] = n
		}
		sched := rand.New(rand.NewSource(33))
		steps := chattyOps
		if quietOps > steps {
			steps = quietOps
		}
		for so := 0; so < steps; so++ {
			for oi, ospec := range man {
				if so >= len(scripts[oi]) {
					continue
				}
				sop := scripts[oi][so]
				p, _ := ns[sop.Node].Peer(ospec.ID)
				if _, err := p.Invoke(sop.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
					return nil, nil, fmt.Errorf("object %d: invoke %v at %s: %w", ospec.ID, sop.Op, sop.Node, err)
				}
				for k := sched.Intn(3); k > 0; k-- {
					if _, err := ns[sched.Intn(nodes)].Step(false); err != nil {
						return nil, nil, err
					}
				}
			}
		}
		for _, n := range ns {
			for _, id := range n.Objects() {
				p, _ := n.Peer(id)
				if err := p.Done(); err != nil {
					return nil, nil, err
				}
			}
		}
		states := make([][][]byte, nodes)
		stats := make([]transport.Stats, nodes)
		for i, n := range ns {
			if err := n.RunToQuiescence(5 * time.Second); err != nil {
				return nil, nil, fmt.Errorf("node %d: %w", i, err)
			}
			states[i] = make([][]byte, len(man))
			for oi, ospec := range man {
				p, _ := n.Peer(ospec.ID)
				states[i][oi] = p.CanonicalState()
			}
			stats[i] = n.Transport().(transport.StatsReporter).Stats()
		}
		return states, stats, nil
	}

	states, stats, err := memLeg()
	if err != nil {
		return fmt.Errorf("mem leg: %w", err)
	}
	if err := checkConverged(states); err != nil {
		return fmt.Errorf("mem leg: %w", err)
	}
	queued := 0
	for i, st := range stats {
		if err := checkStats(i, st); err != nil {
			return fmt.Errorf("mem leg: %w", err)
		}
		queued += st.FramesQueued
	}
	if queued == 0 {
		return fmt.Errorf("mem leg: no node queued a single frame — the scripts exercised nothing")
	}
	if !stats[0].Sched.Enabled || stats[2].Sched.Enabled {
		return fmt.Errorf("mem leg: scheduler enablement mis-reported (node 0: %v, node 2: %v)",
			stats[0].Sched.Enabled, stats[2].Sched.Enabled)
	}
	rerunStates, rerunStats, err := memLeg()
	if err != nil {
		return fmt.Errorf("mem rerun: %w", err)
	}
	if !reflect.DeepEqual(rerunStates, states) {
		return fmt.Errorf("mem leg is not deterministic: rerun converged to different canonical states")
	}
	if !reflect.DeepEqual(rerunStats, stats) {
		return fmt.Errorf("mem leg is not deterministic: rerun produced a different stats snapshot")
	}

	// Leg 2: live unix-socket mesh. The shared batch policy never flushes on
	// its own; only the quiet object's max-delay override may put frames on
	// the wire before the end-of-run flush.
	unixLeg := func() error {
		dir, err := os.MkdirTemp("", "crdt-fairness-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		addrs := make([]string, nodes)
		for i := range addrs {
			addrs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("n%d.sock", i))
		}
		batch := transport.BatchPolicy{MaxFrames: 1 << 20}
		schedPol := transport.SchedPolicy{
			Weights:     map[transport.ObjID]int{chatty: 1, quiet: 8},
			MaxDelay:    map[transport.ObjID]time.Duration{quiet: 10 * time.Millisecond},
			ChunkFrames: 4,
		}
		wstates := make([][][]byte, nodes)
		wire := make([]transport.Stats, nodes)
		conns := make([]int, nodes)
		quietIssued := make([]int, nodes)
		errs := make([]error, nodes)
		var wg sync.WaitGroup
		runNode := func(id model.NodeID) {
			defer wg.Done()
			errs[id] = func() error {
				st, err := transport.Listen(id, addrs,
					transport.WithRecvTimeout(5*time.Second), transport.WithManifest(man),
					transport.WithBatching(batch), transport.WithScheduler(schedPol))
				if err != nil {
					return err
				}
				defer st.Close()
				n, err := transport.NewNode(st, man)
				if err != nil {
					return err
				}
				if err := register(n); err != nil {
					return err
				}
				invoke := func(oi int, ospec transport.ObjectSpec) error {
					for _, so := range scripts[oi] {
						if so.Node != id {
							continue
						}
						p, _ := n.Peer(ospec.ID)
						if _, err := p.Invoke(so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
							return err
						}
					}
					return nil
				}
				// Chatty first: its frames must sit in the chatty send queue
				// (nothing in the shared policy can flush them).
				if err := invoke(0, man[0]); err != nil {
					return err
				}
				chattyDepth := 0
				if co := st.Stats().Sched.Objects[chatty]; co != nil {
					chattyDepth = co.Depth
				}
				cp, _ := n.Peer(chatty)
				if cp.Issued() > 0 && chattyDepth != cp.Issued() {
					return fmt.Errorf("chatty backlog depth %d after %d issued effectors — the shared policy flushed what only the scheduler may",
						chattyDepth, cp.Issued())
				}
				// Quiet next: its 10ms max-delay override must drain exactly
				// the quiet queue, leaving the chatty backlog untouched.
				if err := invoke(1, man[1]); err != nil {
					return err
				}
				qp, _ := n.Peer(quiet)
				quietIssued[id] = qp.Issued()
				if quietIssued[id] > 0 {
					deadline := time.Now().Add(5 * time.Second)
					for {
						q := st.Stats().Sched.Objects[quiet]
						if q != nil && q.Depth == 0 && q.Drained >= quietIssued[id] && q.DeadlineFlushes >= 1 {
							break
						}
						if time.Now().After(deadline) {
							return fmt.Errorf("quiet object's max-delay override never flushed its queue: %+v", q)
						}
						time.Sleep(2 * time.Millisecond)
					}
					after := st.Stats()
					if co := after.Sched.Objects[chatty]; chattyDepth > 0 && (co == nil || co.Depth != chattyDepth) {
						got := 0
						if co != nil {
							got = co.Depth
						}
						return fmt.Errorf("chatty backlog depth changed from %d to %d while only the quiet deadline fired", chattyDepth, got)
					}
					if q := after.Sched.Objects[quiet]; q.DelaySamples > 0 && q.DelayMax > 5*time.Second {
						return fmt.Errorf("quiet enqueue→wire delay %s wildly exceeds the 10ms override", q.DelayMax)
					}
				}
				for _, obj := range n.Objects() {
					p, _ := n.Peer(obj)
					if err := p.Done(); err != nil {
						return err
					}
				}
				if err := n.RunToQuiescence(10 * time.Second); err != nil {
					return err
				}
				wstates[id] = make([][]byte, len(man))
				for oi, ospec := range man {
					p, _ := n.Peer(ospec.ID)
					wstates[id][oi] = p.CanonicalState()
				}
				wire[id] = st.Stats()
				conns[id] = len(st.ConnectedPeers())
				return nil
			}()
		}
		wg.Add(nodes)
		for i := 0; i < nodes; i++ {
			go runNode(model.NodeID(i))
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				return fmt.Errorf("peer %d: %w", id, err)
			}
		}
		if err := checkConverged(wstates); err != nil {
			return err
		}
		totalQuiet := 0
		for id := 0; id < nodes; id++ {
			if conns[id] != nodes-1 {
				return fmt.Errorf("node %d holds %d connections for %d peers — objects must share one socket pair per process pair",
					id, conns[id], nodes-1)
			}
			if !wire[id].Sched.Enabled {
				return fmt.Errorf("node %d: scheduler not enabled despite WithScheduler", id)
			}
			if err := checkStats(id, wire[id]); err != nil {
				return err
			}
			totalQuiet += quietIssued[id]
		}
		if totalQuiet == 0 {
			return fmt.Errorf("no node issued a quiet effector — the override path went unexercised")
		}
		return nil
	}

	if err := unixLeg(); err != nil {
		return fmt.Errorf("unix leg: %w", err)
	}
	return nil
}

// notes adapts a cluster's recovery notes to DivergenceReport's interface.
func notes(c *sim.Cluster) []fmt.Stringer {
	rn := c.RecoveryNotes()
	out := make([]fmt.Stringer, len(rn))
	for i, n := range rn {
		out[i] = n
	}
	return out
}

// codecChecks runs the codec round-trip battery item. For each seed it
// generates a script, executes it fully drained on a byte-shipping cluster
// (WithWireCodec, so every broadcast already exercises encode→frame→decode in
// transit), and then requires, for everything the run reached:
//
//   - ops and return values: DecodeOp/DecodeValue invert AppendOp/AppendValue
//     and re-encoding reproduces the exact bytes;
//   - effectors: the registered EffectorDecoder inverts AppendBinary, the
//     decoded effector re-encodes byte-equal and renders the same String;
//   - replica states: the registered StateDecoder inverts AppendBinary, the
//     decoded state re-encodes byte-equal and keeps the same Key;
//   - canonical form: after the drain all replicas are equal, so their
//     encodings must be byte-equal too (equal objects ⇒ equal bytes).
func codecChecks(alg registry.Algorithm, cfg Config) error {
	if alg.DecodeState == nil || alg.DecodeEffector == nil {
		return fmt.Errorf("algorithm bundle registers no codec decoders")
	}
	const nodes = 3
	ops := cfg.Steps / 4
	if ops < 6 {
		ops = 6
	}
	if ops > 12 {
		ops = 12
	}
	seeds := cfg.Seeds
	if seeds > 4 {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, seed, alg.NeedsCausal)
		opts := []sim.Option{sim.WithWireCodec(alg.DecodeEffector)}
		if alg.NeedsCausal {
			opts = append(opts, sim.WithCausalDelivery())
		}
		c := sim.NewCluster(alg.New(), nodes, opts...)
		for i, so := range script {
			if _, _, err := c.Invoke(so.Node, so.Op); err != nil {
				return fmt.Errorf("seed %d: script op %d: %w", seed, i, err)
			}
			c.DeliverAll()
		}
		for i, ev := range c.Trace() {
			enc := codec.AppendOp(nil, ev.Op)
			op, rest, err := codec.DecodeOp(enc)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("seed %d event %d: op %s did not round-trip: %v", seed, i, ev.Op, err)
			}
			if !bytes.Equal(codec.AppendOp(nil, op), enc) {
				return fmt.Errorf("seed %d event %d: op %s re-encoded differently", seed, i, ev.Op)
			}
			enc = codec.AppendValue(nil, ev.Ret)
			v, rest, err := codec.DecodeValue(enc)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("seed %d event %d: value %s did not round-trip: %v", seed, i, ev.Ret, err)
			}
			if !bytes.Equal(codec.AppendValue(nil, v), enc) {
				return fmt.Errorf("seed %d event %d: value %s re-encoded differently", seed, i, ev.Ret)
			}
			enc = ev.Eff.AppendBinary(nil)
			eff, err := alg.DecodeEffector(enc)
			if err != nil {
				return fmt.Errorf("seed %d event %d: effector %s did not decode: %w", seed, i, ev.Eff, err)
			}
			if !bytes.Equal(eff.AppendBinary(nil), enc) {
				return fmt.Errorf("seed %d event %d: effector %s re-encoded differently", seed, i, ev.Eff)
			}
			if eff.String() != ev.Eff.String() {
				return fmt.Errorf("seed %d event %d: effector decoded to %s, want %s", seed, i, eff, ev.Eff)
			}
		}
		var canonical []byte
		for t := 0; t < nodes; t++ {
			enc := c.StateOf(model.NodeID(t)).AppendBinary(nil)
			st, err := alg.DecodeState(enc)
			if err != nil {
				return fmt.Errorf("seed %d: node %d state did not decode: %w", seed, t, err)
			}
			if !bytes.Equal(st.AppendBinary(nil), enc) {
				return fmt.Errorf("seed %d: node %d state re-encoded differently", seed, t)
			}
			if st.Key() != c.StateOf(model.NodeID(t)).Key() {
				return fmt.Errorf("seed %d: node %d state decoded to a different Key", seed, t)
			}
			if t == 0 {
				canonical = enc
			} else if !bytes.Equal(enc, canonical) {
				return fmt.Errorf("seed %d: converged replicas 0 and %d encode differently — canonical form violated", seed, t)
			}
		}
	}
	return nil
}

func clientRefinement(alg registry.Algorithm, client string) error {
	prog, err := lang.Parse(client)
	if err != nil {
		return err
	}
	res, err := refine.Check(alg, prog, refine.Explorer{})
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("refinement violated: %d concrete behaviours uncovered (first: %s)",
			len(res.Extra), res.Extra[0])
	}
	return nil
}

// RunAll runs the battery for every registered algorithm.
func RunAll(cfg Config) []Report {
	var out []Report
	for _, alg := range registry.All() {
		out = append(out, Run(alg, cfg))
	}
	return out
}
