package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/spec"
)

// This file validates the max-register extension (internal/crdts/maxreg) —
// an algorithm NOT in the paper, added to demonstrate that the framework
// accepts new algorithms with zero checker changes. The bundle comes from
// registry.Extensions().

// TestUserDefinedMaxRegisterConforms: the framework validates a brand-new
// algorithm end to end — well-formedness, CRDT-TS, ACC witness, exhaustive
// ACC, SEC, and client refinement.
func TestUserDefinedMaxRegisterConforms(t *testing.T) {
	rep := Run(registry.MaxRegister(), Config{
		Seeds: 4,
		Steps: 25,
		Client: `node t1 { write(3); x := read(); }
		         node t2 { write(7); y := read(); }`,
	})
	if err := rep.Err(); err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
}

// TestMaxRegisterMonotone: once a reader sees n, it never reads below n —
// model-checked over the conformance battery's own machinery is overkill, so
// check directly on the simulator.
func TestMaxRegisterMonotone(t *testing.T) {
	alg := registry.MaxRegister()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		obj := alg.New()
		s := obj.Init()
		best := int64(0)
		for i := 0; i < 30; i++ {
			n := int64(rng.Intn(15))
			_, eff, err := obj.Prepare(model.Op{Name: spec.OpWrite, Arg: model.Int(n)}, s, 0, model.MsgID(i+1))
			if err != nil {
				t.Fatal(err)
			}
			s = eff.Apply(s)
			if n > best {
				best = n
			}
			ret, _, _ := obj.Prepare(model.Op{Name: spec.OpRead}, s, 0, model.MsgID(100+i))
			if got, _ := ret.AsInt(); got != best {
				t.Fatalf("read = %d, want %d", got, best)
			}
		}
	}
}
