package conformance

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crdts/registry"
	"repro/internal/sim"
)

// TestSoak runs long, larger-cluster randomized executions of every
// algorithm through the witness consistency checks and convergence — a
// robustness soak that is skipped under -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	for _, alg := range registry.All() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			p := core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs}
			for seed := int64(1); seed <= 3; seed++ {
				w := sim.Workload{
					Object: alg.New(), Abs: alg.Abs, Gen: sim.GenFunc(alg.GenOp),
					Nodes: 5, Steps: 300, Causal: alg.NeedsCausal, FinalDrain: true,
				}
				c := w.Run(seed)
				tr := c.Trace()
				if err := tr.CheckWellFormed(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if _, ok := c.Converged(alg.Abs); !ok {
					t.Fatalf("seed %d: diverged after full drain", seed)
				}
				if err := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				var res core.Result
				var err error
				if alg.IsX() {
					res, err = core.CheckXACCWitness(tr, core.XProblem{Problem: p, XSpec: alg.XSpec})
				} else {
					res, err = core.CheckACCWitness(tr, p, alg.TSOrder)
				}
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.OK {
					t.Fatalf("seed %d: consistency failed on a %d-event trace: %s", seed, len(tr), res.Reason)
				}
			}
		})
	}
}
