package proofmethod

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/crdt"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/spec"
)

// TestAllUCRAlgorithmsPass is the paper's Sec 8 "Examples" result: all seven
// UCR algorithms discharge the CRDT-TS obligations.
func TestAllUCRAlgorithmsPass(t *testing.T) {
	for _, alg := range registry.UCR() {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			rep := Check(alg, Config{Seeds: 4, Steps: 30})
			if err := rep.Err(); err != nil {
				t.Fatalf("%v\n%s", err, rep)
			}
			if len(rep.Obligations) != 7 {
				t.Fatalf("expected 7 obligations, got %d", len(rep.Obligations))
			}
		})
	}
}

// TestCheckAllCoversSeven: the driver enumerates exactly the seven UCR
// algorithms the paper lists.
func TestCheckAllCoversSeven(t *testing.T) {
	reps := CheckAll(Config{Seeds: 1, Steps: 10})
	if len(reps) != 7 {
		t.Fatalf("CheckAll returned %d reports, want 7", len(reps))
	}
	names := map[string]bool{}
	for _, r := range reps {
		names[r.Algorithm] = true
		if err := r.Err(); err != nil {
			t.Error(err)
		}
	}
	for _, want := range []string{"counter", "g-set", "lww-register", "lww-set", "2p-set", "cseq", "rga"} {
		if !names[want] {
			t.Errorf("missing algorithm %q", want)
		}
	}
}

// TestXWinsRejected: CRDT-TS does not apply to the X-wins sets.
func TestXWinsRejected(t *testing.T) {
	rep := Check(registry.AWSet(), Config{})
	if rep.Err() == nil {
		t.Fatal("expected applicability error for aw-set")
	}
}

func TestReportString(t *testing.T) {
	rep := Check(registry.Counter(), Config{Seeds: 1, Steps: 10})
	s := rep.String()
	if !strings.Contains(s, "counter") || !strings.Contains(s, "commutative effectors") {
		t.Errorf("report rendering: %q", s)
	}
}

// ---------------------------------------------------------------------------
// Negative controls: deliberately broken algorithms must fail the method.
// ---------------------------------------------------------------------------

// nonCommutingSet breaks obligation 1: its remove effector deletes whatever
// is present at the receiving node.
type nonCommutingSet struct{ registry.Algorithm }

type ncState struct{ E *model.ValueSet }

func (s ncState) Key() string { return "nc" + s.E.Key() }

func (s ncState) AppendBinary(b []byte) []byte { return append(b, s.Key()...) }

type ncAdd struct{ E model.Value }

func (d ncAdd) Apply(s crdt.State) crdt.State {
	out := s.(ncState).E.Clone()
	out.Add(d.E)
	return ncState{E: out}
}
func (d ncAdd) String() string { return "NCAdd(" + d.E.String() + ")" }

func (d ncAdd) AppendBinary(b []byte) []byte { return append(b, d.String()...) }

type ncRmv struct{ E model.Value }

func (d ncRmv) Apply(s crdt.State) crdt.State {
	out := s.(ncState).E.Clone()
	out.Remove(d.E)
	return ncState{E: out}
}
func (d ncRmv) String() string { return "NCRmv(" + d.E.String() + ")" }

func (d ncRmv) AppendBinary(b []byte) []byte { return append(b, d.String()...) }

type ncObject struct{}

func (ncObject) Name() string        { return "nc-set" }
func (ncObject) Init() crdt.State    { return ncState{E: model.NewValueSet()} }
func (ncObject) Ops() []model.OpName { return []model.OpName{spec.OpAdd, spec.OpRemove, spec.OpRead} }

func (ncObject) Prepare(op model.Op, s crdt.State, origin model.NodeID, mid model.MsgID) (model.Value, crdt.Effector, error) {
	switch op.Name {
	case spec.OpAdd:
		return model.Nil(), ncAdd{E: op.Arg}, nil
	case spec.OpRemove:
		return model.Nil(), ncRmv{E: op.Arg}, nil
	case spec.OpRead:
		return ncAbs(s), crdt.IdEff{}, nil
	default:
		return model.Nil(), nil, crdt.ErrUnknownOp
	}
}

func ncAbs(s crdt.State) model.Value { return model.List(s.(ncState).E.Elems()...) }

func ncAlgorithm() registry.Algorithm {
	return registry.Algorithm{
		Name:    "nc-set",
		New:     func() crdt.Object { return ncObject{} },
		Abs:     ncAbs,
		Spec:    spec.SetSpec{},
		TSOrder: func(d1, d2 crdt.Effector) bool { return false },
		View:    func(s crdt.State) []crdt.Effector { return nil },
		GenOp: func(rng *rand.Rand, _ crdt.State, _ crdt.Abstraction, pool []model.Value, _ func() model.Value) model.Op {
			e := pool[rng.Intn(len(pool))]
			switch rng.Intn(3) {
			case 0:
				return model.Op{Name: spec.OpRead}
			case 1:
				return model.Op{Name: spec.OpAdd, Arg: e}
			default:
				return model.Op{Name: spec.OpRemove, Arg: e}
			}
		},
	}
}

func TestNonCommutingSetFails(t *testing.T) {
	rep := Check(ncAlgorithm(), Config{Seeds: 4, Steps: 30})
	err := rep.Err()
	if err == nil {
		t.Fatalf("broken set passed the proof method:\n%s", rep)
	}
}

// wrongReturnCounter breaks obligation 2: reads return one more than the
// counter value.
type wrongReturnCounter struct{ inner crdt.Object }

func (w wrongReturnCounter) Name() string        { return "wrong-counter" }
func (w wrongReturnCounter) Init() crdt.State    { return w.inner.Init() }
func (w wrongReturnCounter) Ops() []model.OpName { return w.inner.Ops() }

func (w wrongReturnCounter) Prepare(op model.Op, s crdt.State, origin model.NodeID, mid model.MsgID) (model.Value, crdt.Effector, error) {
	ret, eff, err := w.inner.Prepare(op, s, origin, mid)
	if err == nil && op.Name == spec.OpRead {
		n, _ := ret.AsInt()
		ret = model.Int(n + 1)
	}
	return ret, eff, err
}

func TestWrongReturnValueFails(t *testing.T) {
	base := registry.Counter()
	alg := base
	alg.Name = "wrong-counter"
	alg.New = func() crdt.Object { return wrongReturnCounter{inner: base.New()} }
	rep := Check(alg, Config{Seeds: 2, Steps: 20})
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "same return value") {
		t.Fatalf("err = %v, want same-return-value violation", err)
	}
}

// TestReversedTSOrderFails breaks the well-formedness/state-correspondence
// side: the LWW register with an inverted ↣ claims the SMALLER stamp wins,
// so fresh effectors become invalid and correspondence fails.
func TestReversedTSOrderFails(t *testing.T) {
	base := registry.LWWRegister()
	alg := base
	alg.Name = "lww-register-reversed"
	alg.TSOrder = func(d1, d2 crdt.Effector) bool { return base.TSOrder(d2, d1) }
	rep := Check(alg, Config{Seeds: 4, Steps: 30})
	if rep.Err() == nil {
		t.Fatalf("reversed ↣ passed the proof method:\n%s", rep)
	}
}

// TestLyingViewFails: a view function reporting effectors that were never
// applied violates V-soundness.
func TestLyingViewFails(t *testing.T) {
	base := registry.GSet()
	alg := base
	alg.Name = "g-set-lying-view"
	alg.View = func(s crdt.State) []crdt.Effector {
		return []crdt.Effector{ncAdd{E: model.Str("phantom")}}
	}
	rep := Check(alg, Config{Seeds: 1, Steps: 10})
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "V sound") {
		t.Fatalf("err = %v, want V-soundness violation", err)
	}
}
