// Package proofmethod implements CRDT-TS, the paper's generic proof method
// for verifying ACC of UCR-CRDT implementations (Sec 8, Theorem 8). The user
// supplies the timestamp order ↣ over effectors and the view function V from
// replica states to applied effectors; the method then discharges four
// families of proof obligations. The paper's obligations are first-order
// formulae over states and effectors — no trace induction — so they are
// discharged here by systematic property checking over the reachable states
// and effectors of randomized executions:
//
//  1. Commutative effectors — all generated effectors commute pairwise.
//  2. Same return value — Prepare and Γ agree on results at φ-related states.
//  3. State correspondence — a valid effector (one that ↣ does not order
//     before anything in V(S)) and its abstract operation lead φ-related
//     states to φ-related states.
//  4. Well-formedness of ↣ and V — ↣ is a strict partial order that relates
//     the effectors of all conflicting operations; V(init) is empty; V(S)
//     only reports effectors actually applied; and freshly generated
//     effectors are valid at their origin.
//
// Theorem 8 (CRDT-TS ⇒ ACC) is exercised end-to-end by the witness-mode ACC
// checker in internal/core, which constructs arbitration orders from the
// same ↣.
package proofmethod

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/crdt"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config bounds the sampling effort.
type Config struct {
	// Seeds is the number of randomized executions to sample (default 6).
	Seeds int
	// Steps is the scheduler steps per execution (default 40).
	Steps int
	// Nodes is the cluster size (default 3).
	Nodes int
	// MaxPairs caps the number of effector pairs checked per obligation per
	// execution (default 4000).
	MaxPairs int
}

func (c Config) withDefaults() Config {
	if c.Seeds == 0 {
		c.Seeds = 6
	}
	if c.Steps == 0 {
		c.Steps = 40
	}
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.MaxPairs == 0 {
		c.MaxPairs = 4000
	}
	return c
}

// Obligation is one checked proof obligation.
type Obligation struct {
	Name    string
	Checked int   // number of instances examined
	Err     error // first violation, if any
}

// Report is the outcome of running CRDT-TS for one algorithm.
type Report struct {
	Algorithm   string
	Obligations []Obligation
}

// Err returns the first violated obligation's error, or nil.
func (r Report) Err() error {
	for _, o := range r.Obligations {
		if o.Err != nil {
			return fmt.Errorf("%s: obligation %q: %w", r.Algorithm, o.Name, o.Err)
		}
	}
	return nil
}

// String renders the report as a table row block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.Algorithm)
	for _, o := range r.Obligations {
		status := "ok"
		if o.Err != nil {
			status = "FAIL: " + o.Err.Error()
		}
		fmt.Fprintf(&b, "  %-24s %6d checked  %s\n", o.Name, o.Checked, status)
	}
	return b.String()
}

// sample is the execution evidence the obligations quantify over.
type sample struct {
	// states are reachable replica states, deduplicated by Key.
	states []crdt.State
	// effs are the distinct effectors generated, with their operations.
	effs []effSample
	// originPairs pairs each origin event's effector with the origin
	// replica state immediately before the operation ran.
	originPairs []originSample
}

type effSample struct {
	op  model.Op
	eff crdt.Effector
}

type originSample struct {
	op     model.Op
	eff    crdt.Effector
	before crdt.State
	ret    model.Value
}

// collect replays one randomized execution and gathers states, effectors and
// origin pairs.
func collect(alg registry.Algorithm, seed int64, cfg Config) sample {
	w := sim.Workload{
		Object: alg.New(),
		Abs:    alg.Abs,
		Gen:    sim.GenFunc(alg.GenOp),
		Nodes:  cfg.Nodes,
		Steps:  cfg.Steps,
		Causal: alg.NeedsCausal,
	}
	c := w.Run(seed)
	tr := c.Trace()
	obj := alg.New()

	var out sample
	seenState := map[string]bool{}
	addState := func(s crdt.State) {
		if k := s.Key(); !seenState[k] {
			seenState[k] = true
			out.states = append(out.states, s)
		}
	}
	seenEff := map[string]bool{}
	states := map[model.NodeID]crdt.State{}
	for _, t := range tr.Nodes() {
		states[t] = obj.Init()
		addState(states[t])
	}
	for _, e := range tr {
		before := states[e.Node]
		if e.IsOrigin {
			out.originPairs = append(out.originPairs, originSample{op: e.Op, eff: e.Eff, before: before, ret: e.Ret})
		}
		if !e.IsQuery() {
			if k := e.Eff.String(); !seenEff[k] {
				seenEff[k] = true
				out.effs = append(out.effs, effSample{op: e.Op, eff: e.Eff})
			}
		}
		states[e.Node] = e.Eff.Apply(before)
		addState(states[e.Node])
	}
	return out
}

// valid reports whether δ is valid at state S: ↣ does not order δ before any
// effector in V(S).
func valid(alg registry.Algorithm, d crdt.Effector, s crdt.State) bool {
	for _, applied := range alg.View(s) {
		if alg.TSOrder(d, applied) {
			return false
		}
	}
	return true
}

// Check runs the CRDT-TS obligations for one UCR algorithm.
func Check(alg registry.Algorithm, cfg Config) Report {
	cfg = cfg.withDefaults()
	if alg.IsX() {
		return Report{Algorithm: alg.Name, Obligations: []Obligation{{
			Name: "applicability",
			Err:  errors.New("CRDT-TS applies to UCR algorithms only; X-wins algorithms are verified against XACC"),
		}}}
	}
	var samples []sample
	for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
		samples = append(samples, collect(alg, seed, cfg))
	}
	report := Report{Algorithm: alg.Name}
	add := func(name string, checked int, err error) {
		report.Obligations = append(report.Obligations, Obligation{Name: name, Checked: checked, Err: err})
	}
	add(checkCommutativity(alg, samples, cfg))
	add(checkSameReturn(alg, samples))
	add(checkStateCorrespondence(alg, samples, cfg))
	add(checkTSOrderStrict(alg, samples, cfg))
	add(checkConflictCoverage(alg, samples, cfg))
	add(checkViewSound(alg))
	add(checkFreshValid(alg, samples))
	return report
}

// CheckAll runs the proof method for all seven UCR algorithms of Sec 8.
func CheckAll(cfg Config) []Report {
	var out []Report
	for _, alg := range registry.UCR() {
		out = append(out, Check(alg, cfg))
	}
	return out
}

// checkCommutativity: obligation 1 — every pair of generated effectors
// commutes on every sampled state.
func checkCommutativity(alg registry.Algorithm, samples []sample, cfg Config) (string, int, error) {
	checked := 0
	for _, sm := range samples {
		pairs := 0
		for i, d1 := range sm.effs {
			for _, d2 := range sm.effs[i:] {
				if pairs >= cfg.MaxPairs {
					break
				}
				pairs++
				for _, s := range sm.states {
					checked++
					a := d2.eff.Apply(d1.eff.Apply(s))
					b := d1.eff.Apply(d2.eff.Apply(s))
					if a.Key() != b.Key() {
						return "commutative effectors", checked, fmt.Errorf(
							"effectors %s and %s do not commute on state %s", d1.eff, d2.eff, s.Key())
					}
				}
			}
		}
	}
	return "commutative effectors", checked, nil
}

// checkSameReturn: obligation 2 — at every sampled state where an operation's
// precondition holds, Prepare's return value equals Γ's at the φ-related
// abstract state.
func checkSameReturn(alg registry.Algorithm, samples []sample) (string, int, error) {
	obj := alg.New()
	checked := 0
	for _, sm := range samples {
		for _, os := range sm.originPairs {
			for _, s := range sm.states {
				ret, _, err := obj.Prepare(os.op, s, 0, 1<<20)
				if err != nil {
					continue // precondition fails here; obligation does not apply
				}
				checked++
				wantRet, _ := alg.Spec.Apply(os.op, alg.Abs(s))
				if !ret.Equal(wantRet) {
					return "same return value", checked, fmt.Errorf(
						"%s at state %s returns %s concretely but %s abstractly", os.op, s.Key(), ret, wantRet)
				}
			}
		}
	}
	return "same return value", checked, nil
}

// checkStateCorrespondence: obligation 3 — applying a valid effector and the
// corresponding abstract operation preserves φ-relatedness.
func checkStateCorrespondence(alg registry.Algorithm, samples []sample, cfg Config) (string, int, error) {
	checked := 0
	for _, sm := range samples {
		n := 0
		for _, es := range sm.effs {
			for _, s := range sm.states {
				if n >= cfg.MaxPairs {
					break
				}
				n++
				if !valid(alg, es.eff, s) {
					continue
				}
				checked++
				got := alg.Abs(es.eff.Apply(s))
				_, want := alg.Spec.Apply(es.op, alg.Abs(s))
				if !got.Equal(want) {
					return "state correspondence", checked, fmt.Errorf(
						"valid effector %s of %s at state %s yields %s, abstract op yields %s",
						es.eff, es.op, s.Key(), got, want)
				}
			}
		}
	}
	return "state correspondence", checked, nil
}

// checkTSOrderStrict: well-formedness — ↣ is irreflexive, antisymmetric, and
// acyclic on the sampled effectors (its transitive closure is then a strict
// partial order; the raw relation need not be transitive — the paper's own
// RGA instance has Add ↣ Add ↣ Rmv chains whose endpoints are unrelated).
func checkTSOrderStrict(alg registry.Algorithm, samples []sample, cfg Config) (string, int, error) {
	checked := 0
	for _, sm := range samples {
		effs := sm.effs
		for i, a := range effs {
			if alg.TSOrder(a.eff, a.eff) {
				return "↣ strict partial order", checked, fmt.Errorf("↣ is reflexive on %s", a.eff)
			}
			for _, b := range effs[i+1:] {
				checked++
				if alg.TSOrder(a.eff, b.eff) && alg.TSOrder(b.eff, a.eff) {
					return "↣ strict partial order", checked, fmt.Errorf("↣ is symmetric on %s, %s", a.eff, b.eff)
				}
			}
		}
		// Acyclicity via iterative DFS three-colouring.
		n := len(effs)
		adj := make([][]int, n)
		for i := range effs {
			for j := range effs {
				if i != j && alg.TSOrder(effs[i].eff, effs[j].eff) {
					adj[i] = append(adj[i], j)
				}
			}
		}
		color := make([]int, n) // 0 white, 1 grey, 2 black
		var stack []int
		for root := 0; root < n; root++ {
			if color[root] != 0 {
				continue
			}
			stack = append(stack[:0], root)
			for len(stack) > 0 {
				i := stack[len(stack)-1]
				if color[i] == 0 {
					color[i] = 1
				}
				advanced := false
				for _, j := range adj[i] {
					checked++
					if color[j] == 1 {
						return "↣ strict partial order", checked, fmt.Errorf(
							"↣ is cyclic through %s and %s", effs[i].eff, effs[j].eff)
					}
					if color[j] == 0 {
						stack = append(stack, j)
						advanced = true
						break
					}
				}
				if !advanced {
					color[i] = 2
					stack = stack[:len(stack)-1]
				}
			}
		}
	}
	return "↣ strict partial order", checked, nil
}

// checkConflictCoverage: well-formedness — the effectors of conflicting
// operations are always ↣-comparable, so all nodes arbitrate them alike.
func checkConflictCoverage(alg registry.Algorithm, samples []sample, cfg Config) (string, int, error) {
	checked := 0
	for _, sm := range samples {
		n := 0
		for i, a := range sm.effs {
			for _, b := range sm.effs[i+1:] {
				if n >= cfg.MaxPairs {
					break
				}
				n++
				if !alg.Spec.Conflict(a.op, b.op) {
					continue
				}
				checked++
				if !alg.TSOrder(a.eff, b.eff) && !alg.TSOrder(b.eff, a.eff) {
					return "⊲⊳ covered by ↣", checked, fmt.Errorf(
						"conflicting %s and %s have ↣-incomparable effectors %s, %s", a.op, b.op, a.eff, b.eff)
				}
			}
		}
	}
	return "⊲⊳ covered by ↣", checked, nil
}

// checkViewSound: well-formedness — V(init) is empty, and replaying any
// local trace, V(S) only ever reports effectors that were actually applied.
func checkViewSound(alg registry.Algorithm) (string, int, error) {
	obj := alg.New()
	if view := alg.View(obj.Init()); len(view) != 0 {
		return "V sound", 1, fmt.Errorf("V(init) = %v, want empty", view)
	}
	checked := 1
	w := sim.Workload{
		Object: alg.New(),
		Abs:    alg.Abs,
		Gen:    sim.GenFunc(alg.GenOp),
		Nodes:  3,
		Steps:  40,
		Causal: alg.NeedsCausal,
	}
	c := w.Run(99)
	tr := c.Trace()
	for _, t := range tr.Nodes() {
		applied := map[string]bool{}
		s := obj.Init()
		for _, e := range tr.Restrict(t) {
			applied[e.Eff.String()] = true
			s = e.Eff.Apply(s)
			for _, d := range alg.View(s) {
				checked++
				if !applied[d.String()] {
					return "V sound", checked, fmt.Errorf(
						"V reports %s at node %s, which was never applied", d, t)
				}
			}
		}
	}
	return "V sound", checked, nil
}

// checkFreshValid: well-formedness — an effector generated at state S is
// valid at S (↣ never orders it before something already applied there).
func checkFreshValid(alg registry.Algorithm, samples []sample) (string, int, error) {
	checked := 0
	for _, sm := range samples {
		for _, os := range sm.originPairs {
			if crdt.IsIdentity(os.eff) {
				continue
			}
			checked++
			if !valid(alg, os.eff, os.before) {
				return "fresh effectors valid", checked, fmt.Errorf(
					"fresh effector %s is invalid at its origin state %s", os.eff, os.before.Key())
			}
		}
	}
	return "fresh effectors valid", checked, nil
}

// ReplayStates is a helper for external harnesses: it replays a trace on one
// node and returns every intermediate state.
func ReplayStates(obj crdt.Object, tr trace.Trace, t model.NodeID) []crdt.State {
	s := obj.Init()
	out := []crdt.State{s}
	for _, e := range tr.Restrict(t) {
		s = e.Eff.Apply(s)
		out = append(out, s)
	}
	return out
}
