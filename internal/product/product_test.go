package product

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crdt"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
)

// cartClock is the running example: a shopping cart (LWW-element set)
// composed with a counter.
func cartClock() (*Object, registry.Algorithm, registry.Algorithm) {
	cart := registry.LWWSet()
	clock := registry.Counter()
	obj := MustNew(
		Component{Name: "cart", Object: cart.New(), Spec: cart.Spec, Abs: cart.Abs, TSOrder: cart.TSOrder},
		Component{Name: "clock", Object: clock.New(), Spec: clock.Spec, Abs: clock.Abs, TSOrder: clock.TSOrder},
	)
	return obj, cart, clock
}

func op(name string, arg model.Value) model.Op {
	return model.Op{Name: model.OpName(name), Arg: arg}
}

func TestRouting(t *testing.T) {
	obj, _, _ := cartClock()
	c := sim.NewCluster(obj, 2)
	if _, _, err := c.Invoke(0, op("cart.add", model.Str("x"))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Invoke(1, op("clock.inc", model.Int(3))); err != nil {
		t.Fatal(err)
	}
	c.DeliverAll()
	abs, ok := c.Converged(obj.Abs)
	if !ok {
		t.Fatal("diverged")
	}
	want := model.List(model.List(model.Str("x")), model.Int(3))
	if !abs.Equal(want) {
		t.Fatalf("abs = %s, want %s", abs, want)
	}
	ret, _, err := c.Invoke(0, op("cart.lookup", model.Str("x")))
	if err != nil || !ret.Equal(model.True) {
		t.Fatalf("lookup: %s %v", ret, err)
	}
	ret, _, err = c.Invoke(1, op("clock.read", model.Nil()))
	if err != nil || !ret.Equal(model.Int(3)) {
		t.Fatalf("clock read: %s %v", ret, err)
	}
}

func TestRoutingErrors(t *testing.T) {
	obj, _, _ := cartClock()
	c := sim.NewCluster(obj, 1)
	if _, _, err := c.Invoke(0, op("add", model.Str("x"))); err == nil {
		t.Error("non-namespaced op accepted")
	}
	if _, _, err := c.Invoke(0, op("basket.add", model.Str("x"))); !errors.Is(err, crdt.ErrUnknownOp) {
		t.Errorf("unknown component: err = %v", err)
	}
	if _, err := New(); err == nil {
		t.Error("empty product accepted")
	}
	if _, err := New(Component{Name: "a.b"}); err == nil {
		t.Error("dotted component name accepted")
	}
	if _, err := New(Component{Name: "a"}, Component{Name: "a"}); err == nil {
		t.Error("duplicate component name accepted")
	}
}

// TestProductSpecConflicts: conflicts stay within components.
func TestProductSpecConflicts(t *testing.T) {
	obj, _, _ := cartClock()
	sp := obj.ProductSpec()
	addX := op("cart.add", model.Str("x"))
	rmvX := op("cart.remove", model.Str("x"))
	inc := op("clock.inc", model.Int(1))
	if !sp.Conflict(addX, rmvX) {
		t.Error("cart.add ⊲⊳ cart.remove expected")
	}
	if sp.Conflict(addX, inc) || sp.Conflict(inc, inc) {
		t.Error("cross-component or counter conflicts must be empty")
	}
	if err := spec.CheckSymmetric(sp, []model.Op{addX, rmvX, inc}); err != nil {
		t.Error(err)
	}
}

// TestProductNonComm: Def 1 holds for the product — operations unrelated by
// the union ⊲⊳ commute (in particular cross-component ones).
func TestProductNonComm(t *testing.T) {
	obj, _, _ := cartClock()
	sp := obj.ProductSpec()
	ops := []model.Op{
		op("cart.add", model.Str("x")), op("cart.remove", model.Str("x")),
		op("cart.add", model.Str("y")), op("clock.inc", model.Int(1)),
		op("clock.dec", model.Int(2)), op("clock.read", model.Nil()),
		op("cart.read", model.Nil()),
	}
	states := []model.Value{
		sp.Init(),
		model.List(model.List(model.Str("x")), model.Int(5)),
		model.List(model.List(model.Str("x"), model.Str("y")), model.Int(-1)),
	}
	if err := spec.CheckNonComm(sp, ops, states); err != nil {
		t.Error(err)
	}
}

// productGen issues namespaced operations over both components.
func productGen(rng *rand.Rand, _ crdt.State, _ crdt.Abstraction, pool []model.Value, _ func() model.Value) model.Op {
	if rng.Intn(2) == 0 {
		switch rng.Intn(4) {
		case 0:
			return op("cart.read", model.Nil())
		case 1:
			return op("cart.lookup", pool[rng.Intn(len(pool))])
		case 2:
			return op("cart.add", pool[rng.Intn(len(pool))])
		default:
			return op("cart.remove", pool[rng.Intn(len(pool))])
		}
	}
	switch rng.Intn(3) {
	case 0:
		return op("clock.read", model.Nil())
	case 1:
		return op("clock.inc", model.Int(int64(1+rng.Intn(3))))
	default:
		return op("clock.dec", model.Int(int64(1+rng.Intn(3))))
	}
}

// TestCompositionality is the Sec 2.4 claim: the product of two ACC objects
// satisfies ACC (checked via the product ↣ witness on randomized traces and
// via the complete search on short ones) and converges.
func TestCompositionality(t *testing.T) {
	obj, _, _ := cartClock()
	p := core.Problem{Object: obj, Spec: obj.ProductSpec(), Abs: obj.Abs}
	for seed := int64(1); seed <= 8; seed++ {
		w := sim.Workload{
			Object: obj,
			Abs:    obj.Abs,
			Gen:    productGen,
			Nodes:  3,
			Steps:  30,
		}
		tr := w.Run(seed).Trace()
		res, err := core.CheckACCWitness(tr, p, obj.TSOrder)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK {
			t.Fatalf("seed %d: product ACC witness failed: %s\n%s", seed, res.Reason, tr)
		}
		if err := core.CheckConvergenceFrom(tr, obj.Init(), obj.Abs); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	// Complete decision on short traces.
	for seed := int64(1); seed <= 3; seed++ {
		w := sim.Workload{Object: obj, Abs: obj.Abs, Gen: productGen, Nodes: 2, Steps: 8}
		tr := w.Run(seed).Trace()
		res, err := core.CheckACC(tr, p)
		if err != nil {
			t.Skipf("seed %d: %v", seed, err)
		}
		if !res.OK {
			t.Fatalf("seed %d: product exhaustive ACC failed: %s", seed, res.Reason)
		}
	}
}

func TestProductStateAndEffectorRendering(t *testing.T) {
	obj, _, _ := cartClock()
	s := obj.Init()
	if !strings.Contains(s.Key(), "⊗") {
		t.Errorf("state key = %q", s.Key())
	}
	_, eff, err := obj.Prepare(op("clock.inc", model.Int(1)), s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(eff.String(), "clock.") {
		t.Errorf("effector = %q", eff)
	}
	if got := obj.Name(); !strings.Contains(got, "cart:lww-set") {
		t.Errorf("name = %q", got)
	}
	if got := len(obj.Ops()); got != len(registry.LWWSet().New().Ops())+len(registry.Counter().New().Ops()) {
		t.Errorf("ops = %d", got)
	}
	if got := len(obj.ProductSpec().Ops()); got == 0 {
		t.Error("spec ops empty")
	}
}
