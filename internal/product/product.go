// Package product implements the compositionality construction of Sec 2.4:
// clients may use several CRDTs Π1, …, Πn together and view them as one
// object satisfying ACC/XACC over the disjoint union of the operations,
// specifications, and conflict relations, provided the objects share no
// data.
//
// Operations are namespaced "name.op" (e.g. "cart.add", "clock.inc"); the
// product routes each call to its component, pairs the component states, and
// takes the union of the conflict relations — operations of different
// components never conflict, because their actions touch disjoint state and
// therefore commute.
package product

import (
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/crdt"
	"repro/internal/model"
	"repro/internal/spec"
)

// Component is one named member of a product.
type Component struct {
	// Name prefixes the component's operations ("cart" → "cart.add").
	Name string
	// Object is the component implementation Π_i.
	Object crdt.Object
	// Spec is the component specification (Γ_i, ⊲⊳_i).
	Spec spec.Spec
	// Abs is the component abstraction φ_i.
	Abs crdt.Abstraction
	// TSOrder is the component's ↣ (may be nil).
	TSOrder func(d1, d2 crdt.Effector) bool
}

// splitOp separates "name.op" into the component name and the bare op.
func splitOp(op model.Op) (string, model.Op, error) {
	name := string(op.Name)
	i := strings.IndexByte(name, '.')
	if i < 0 {
		return "", model.Op{}, fmt.Errorf("product: operation %q is not namespaced component.op", name)
	}
	return name[:i], model.Op{Name: model.OpName(name[i+1:]), Arg: op.Arg}, nil
}

// State is the product replica state: one component state per member.
type State struct {
	Parts []crdt.State
}

// Key implements crdt.State.
func (s State) Key() string {
	parts := make([]string, len(s.Parts))
	for i, p := range s.Parts {
		parts[i] = p.Key()
	}
	return "×{" + strings.Join(parts, " ⊗ ") + "}"
}

// AppendBinary implements crdt.State: the component states in slot order,
// each length-prefixed (components are different algorithms, so their
// encodings must be framed to concatenate unambiguously).
func (s State) AppendBinary(b []byte) []byte {
	b = codec.AppendUvarint(b, uint64(len(s.Parts)))
	for _, p := range s.Parts {
		b = codec.AppendBytes(b, p.AppendBinary(nil))
	}
	return b
}

// Effector routes a component effector to its slot.
type Effector struct {
	Slot int
	Name string
	Eff  crdt.Effector
}

// Apply implements crdt.Effector.
func (d Effector) Apply(s crdt.State) crdt.State {
	st := s.(State)
	parts := append([]crdt.State(nil), st.Parts...)
	parts[d.Slot] = d.Eff.Apply(parts[d.Slot])
	return State{Parts: parts}
}

// AppendBinary implements crdt.Effector: tag 1, the slot, the component
// name, then the component effector's framed encoding. Products are not in
// the registry, so no decoder is registered; the encoding still provides
// identity for dedup and convergence checks.
func (d Effector) AppendBinary(b []byte) []byte {
	b = codec.AppendUvarint(append(b, 1), uint64(d.Slot))
	b = codec.AppendString(b, d.Name)
	return codec.AppendBytes(b, d.Eff.AppendBinary(nil))
}

// String implements crdt.Effector.
func (d Effector) String() string { return fmt.Sprintf("%s.%s", d.Name, d.Eff) }

// Object is the product implementation ⊎ Πi.
type Object struct {
	comps []Component
	slots map[string]int
}

// New builds the product of the given components. Component names must be
// unique and non-empty.
func New(comps ...Component) (*Object, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("product: need at least one component")
	}
	o := &Object{comps: comps, slots: map[string]int{}}
	for i, c := range comps {
		if c.Name == "" || strings.ContainsRune(c.Name, '.') {
			return nil, fmt.Errorf("product: invalid component name %q", c.Name)
		}
		if _, dup := o.slots[c.Name]; dup {
			return nil, fmt.Errorf("product: duplicate component name %q", c.Name)
		}
		o.slots[c.Name] = i
	}
	return o, nil
}

// MustNew is New, panicking on error.
func MustNew(comps ...Component) *Object {
	o, err := New(comps...)
	if err != nil {
		panic(err)
	}
	return o
}

// Name implements crdt.Object.
func (o *Object) Name() string {
	names := make([]string, len(o.comps))
	for i, c := range o.comps {
		names[i] = c.Name + ":" + c.Object.Name()
	}
	return "product(" + strings.Join(names, ",") + ")"
}

// Init implements crdt.Object.
func (o *Object) Init() crdt.State {
	parts := make([]crdt.State, len(o.comps))
	for i, c := range o.comps {
		parts[i] = c.Object.Init()
	}
	return State{Parts: parts}
}

// Ops implements crdt.Object.
func (o *Object) Ops() []model.OpName {
	var out []model.OpName
	for _, c := range o.comps {
		for _, op := range c.Object.Ops() {
			out = append(out, model.OpName(c.Name+"."+string(op)))
		}
	}
	return out
}

// Prepare implements crdt.Object.
func (o *Object) Prepare(op model.Op, s crdt.State, origin model.NodeID, mid model.MsgID) (model.Value, crdt.Effector, error) {
	name, inner, err := splitOp(op)
	if err != nil {
		return model.Nil(), nil, err
	}
	slot, ok := o.slots[name]
	if !ok {
		return model.Nil(), nil, fmt.Errorf("product: unknown component %q: %w", name, crdt.ErrUnknownOp)
	}
	st := s.(State)
	ret, eff, err := o.comps[slot].Object.Prepare(inner, st.Parts[slot], origin, mid)
	if err != nil {
		return model.Nil(), nil, err
	}
	if crdt.IsIdentity(eff) {
		return ret, crdt.IdEff{}, nil
	}
	return ret, Effector{Slot: slot, Name: name, Eff: eff}, nil
}

// Abs is the product abstraction function: the list of component
// abstractions.
func (o *Object) Abs(s crdt.State) model.Value {
	st := s.(State)
	parts := make([]model.Value, len(st.Parts))
	for i, p := range st.Parts {
		parts[i] = o.comps[i].Abs(p)
	}
	return model.List(parts...)
}

// Spec is the product specification: states are lists of component abstract
// states; operations route by namespace; ⊲⊳ is the disjoint union.
type Spec struct {
	comps []Component
	slots map[string]int
}

// ProductSpec returns the (Γ, ⊲⊳) of the product object.
func (o *Object) ProductSpec() Spec { return Spec{comps: o.comps, slots: o.slots} }

// Name implements spec.Spec.
func (s Spec) Name() string {
	names := make([]string, len(s.comps))
	for i, c := range s.comps {
		names[i] = c.Spec.Name()
	}
	return "product(" + strings.Join(names, ",") + ")"
}

// Init implements spec.Spec.
func (s Spec) Init() model.Value {
	parts := make([]model.Value, len(s.comps))
	for i, c := range s.comps {
		parts[i] = c.Spec.Init()
	}
	return model.List(parts...)
}

// Ops implements spec.Spec.
func (s Spec) Ops() []model.OpName {
	var out []model.OpName
	for _, c := range s.comps {
		for _, op := range c.Spec.Ops() {
			out = append(out, model.OpName(c.Name+"."+string(op)))
		}
	}
	return out
}

// Apply implements spec.Spec (total: unknown operations are no-ops).
func (s Spec) Apply(op model.Op, st model.Value) (model.Value, model.Value) {
	name, inner, err := splitOp(op)
	if err != nil {
		return model.Nil(), st
	}
	slot, ok := s.slots[name]
	if !ok {
		return model.Nil(), st
	}
	parts, _ := st.AsList()
	if slot >= len(parts) {
		return model.Nil(), st
	}
	ret, next := s.comps[slot].Spec.Apply(inner, parts[slot])
	out := make([]model.Value, len(parts))
	copy(out, parts)
	out[slot] = next
	return ret, model.List(out...)
}

// Conflict implements spec.Spec: only same-component operations may
// conflict, per their component relation.
func (s Spec) Conflict(a, b model.Op) bool {
	na, ia, errA := splitOp(a)
	nb, ib, errB := splitOp(b)
	if errA != nil || errB != nil || na != nb {
		return false
	}
	slot, ok := s.slots[na]
	if !ok {
		return false
	}
	return s.comps[slot].Spec.Conflict(ia, ib)
}

// TSOrder is the product ↣: component orders, disjointly.
func (o *Object) TSOrder(d1, d2 crdt.Effector) bool {
	e1, ok1 := d1.(Effector)
	e2, ok2 := d2.(Effector)
	if !ok1 || !ok2 || e1.Slot != e2.Slot {
		return false
	}
	ts := o.comps[e1.Slot].TSOrder
	return ts != nil && ts(e1.Eff, e2.Eff)
}
