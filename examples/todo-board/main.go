// Todo-board demonstrates the compositionality of ACC (Sec 2.4): a shared
// to-do board built from TWO CRDTs used side by side — an RGA list holding
// the task order and an LWW-element set holding the "done" markers — viewed
// by clients as a single object over the disjoint union of the
// specifications, and certified as such with one ACC check.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/product"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	tasks := registry.RGA()
	done := registry.LWWSet()
	board := product.MustNew(
		product.Component{Name: "tasks", Object: tasks.New(), Spec: tasks.Spec, Abs: tasks.Abs, TSOrder: tasks.TSOrder},
		product.Component{Name: "done", Object: done.New(), Spec: done.Spec, Abs: done.Abs, TSOrder: done.TSOrder},
	)
	cluster := sim.NewCluster(board, 2)

	// Ana (node 0) sets up the board.
	shop := invoke(cluster, 0, "tasks.addAfter", model.Pair(spec.Sentinel, model.Str("shop")))
	cook := invoke(cluster, 0, "tasks.addAfter", model.Pair(model.Str("shop"), model.Str("cook")))
	deliver(cluster, 1, shop, cook)

	// Concurrently: Ana inserts "clean" at the top while Ben (node 1) marks
	// "shop" done and appends "relax".
	clean := invoke(cluster, 0, "tasks.addAfter", model.Pair(spec.Sentinel, model.Str("clean")))
	shopDone := invoke(cluster, 1, "done.add", model.Str("shop"))
	relax := invoke(cluster, 1, "tasks.addAfter", model.Pair(model.Str("cook"), model.Str("relax")))

	deliver(cluster, 1, clean)
	deliver(cluster, 0, shopDone, relax)

	fmt.Println("the converged board:")
	show(cluster, board, 0, "Ana")
	show(cluster, board, 1, "Ben")
	if _, ok := cluster.Converged(board.Abs); !ok {
		log.Fatal("the board diverged!")
	}

	// One ACC certificate covers the composite object: conflicts never cross
	// components, so the union specification stays well-formed (Def 1).
	res, err := core.CheckACC(cluster.Trace(), core.Problem{
		Object: board, Spec: board.ProductSpec(), Abs: board.Abs,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("composite ACC violated: %s", res.Reason)
	}
	fmt.Println("\ncomposite ACC certified: the clients may treat tasks+done as ONE atomic object")
	fmt.Println("(compositionality, Sec 2.4 — verified per component, used together)")
}

func invoke(c *sim.Cluster, node model.NodeID, op string, arg model.Value) model.MsgID {
	_, mid, err := c.Invoke(node, model.Op{Name: model.OpName(op), Arg: arg})
	if err != nil {
		log.Fatalf("%s(%s) at %s: %v", op, arg, node, err)
	}
	return mid
}

func deliver(c *sim.Cluster, node model.NodeID, mids ...model.MsgID) {
	for _, mid := range mids {
		if err := c.Deliver(node, mid); err != nil {
			log.Fatal(err)
		}
	}
}

func show(c *sim.Cluster, board *product.Object, node model.NodeID, who string) {
	abs := board.Abs(c.StateOf(node))
	taskList := abs.At(0)
	doneSet := abs.At(1)
	items, _ := taskList.AsList()
	var parts []string
	for _, task := range items {
		name, _ := task.AsString()
		mark := "☐"
		if doneSet.Contains(task) {
			mark = "☑"
		}
		parts = append(parts, mark+" "+name)
	}
	fmt.Printf("  %s sees: %s\n", who, strings.Join(parts, " · "))
}
