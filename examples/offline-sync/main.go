// Offline-sync demonstrates the availability story CRDTs exist for (Sec 1):
// a network partition separates two halves of an LWW-element-set cluster,
// both halves keep serving reads and writes, and after the partition heals
// the backlog drains and every replica converges — with the whole execution
// certified against ACC.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	alg := registry.LWWSet()
	c := sim.NewCluster(alg.New(), 4)

	// A shared grocery list, replicated to everyone.
	milk := add(c, 0, "milk")
	deliverAllTo(c, milk, 1, 2, 3)

	// The network splits: {laptop, phone} vs {tablet, desktop}.
	if err := c.Partition([]model.NodeID{0, 1}, []model.NodeID{2, 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition in effect — both sides keep working:")

	// Left side: buy milk (remove it), add bread.
	rmMilk := invoke(c, 0, spec.OpRemove, "milk")
	bread := add(c, 1, "bread")
	deliverAllTo(c, rmMilk, 1)
	deliverAllTo(c, bread, 0)

	// Right side, concurrently: add eggs and jam.
	eggs := add(c, 2, "eggs")
	jam := add(c, 3, "jam")
	deliverAllTo(c, eggs, 3)
	deliverAllTo(c, jam, 2)

	show(c, alg)
	if _, ok := c.Converged(alg.Abs); ok {
		log.Fatal("sides should have diverged during the partition")
	}

	fmt.Println("\nnetwork heals — the backlog drains:")
	c.Heal()
	c.DeliverAll()
	show(c, alg)
	abs, ok := c.Converged(alg.Abs)
	if !ok {
		log.Fatal("no convergence after heal!")
	}
	fmt.Printf("\nall four replicas agree on %s\n", abs)

	// The partitioned execution still satisfies ACC — availability cost
	// nothing in functional correctness.
	res, err := core.CheckACCWitness(c.Trace(), core.Problem{
		Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs,
	}, alg.TSOrder)
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("ACC violated: %s", res.Reason)
	}
	st := trace.Summarize(c.Trace())
	fmt.Printf("ACC certified over %d events (%.0f%% of operation pairs were concurrent)\n",
		st.Events, 100*st.Concurrency())
}

func add(c *sim.Cluster, node model.NodeID, item string) model.MsgID {
	return invoke(c, node, spec.OpAdd, item)
}

func invoke(c *sim.Cluster, node model.NodeID, op model.OpName, item string) model.MsgID {
	_, mid, err := c.Invoke(node, model.Op{Name: op, Arg: model.Str(item)})
	if err != nil {
		log.Fatal(err)
	}
	return mid
}

func deliverAllTo(c *sim.Cluster, mid model.MsgID, nodes ...model.NodeID) {
	for _, n := range nodes {
		if err := c.Deliver(n, mid); err != nil {
			log.Fatal(err)
		}
	}
}

func show(c *sim.Cluster, alg registry.Algorithm) {
	names := []string{"laptop ", "phone  ", "tablet ", "desktop"}
	for n := 0; n < c.N(); n++ {
		fmt.Printf("  %s sees %s\n", names[n], alg.Abs(c.StateOf(model.NodeID(n))))
	}
}
