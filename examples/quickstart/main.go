// Quickstart: a three-node cluster running the Replicated Growable Array
// (RGA, Fig 2 of the paper), the CRDT behind collaboratively edited
// documents. Three users type concurrently, effectors propagate
// asynchronously and out of order, replicas converge — and the execution
// trace is certified against the paper's correctness condition ACC, with the
// atomic list specification as the abstraction.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	alg := registry.RGA()
	cluster := sim.NewCluster(alg.New(), 3)

	// Alice (node 0) writes the initial document: "H", "i".
	h := invoke(cluster, 0, addAfter("◦", "H"))
	i := invoke(cluster, 0, addAfter("H", "i"))
	// Her edits replicate to Bob (node 1) and Carol (node 2).
	deliver(cluster, 1, h, i)
	deliver(cluster, 2, h, i)
	fmt.Println("after Alice's edits:")
	show(cluster, alg)

	// Bob and Carol edit concurrently: Bob inserts "!" after "i", Carol
	// deletes "i" — a genuine conflict on the same element.
	bang := invoke(cluster, 1, addAfter("i", "!"))
	del := invoke(cluster, 2, model.Op{Name: spec.OpRemove, Arg: model.Str("i")})

	// The network reorders: Alice gets Carol's removal first, then Bob's
	// insert; Bob and Carol exchange directly.
	deliver(cluster, 0, del, bang)
	deliver(cluster, 1, del)
	deliver(cluster, 2, bang)
	fmt.Println("\nafter the concurrent edits (all effectors delivered):")
	show(cluster, alg)

	if abs, ok := cluster.Converged(alg.Abs); ok {
		fmt.Printf("\nreplicas converged to %s — the insert survives its tombstoned anchor\n", abs)
	} else {
		log.Fatal("replicas diverged!")
	}

	// Certify the execution against ACC (Defs 2–3): each node's local view
	// corresponds to an execution of atomic list operations, and the
	// per-node arbitration orders agree on conflicting operations.
	tr := cluster.Trace()
	res, err := core.CheckACC(tr, core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("ACC violated: %s", res.Reason)
	}
	fmt.Println("\nACC certified; per-node arbitration orders over the", len(tr.Origins()), "operations:")
	for _, node := range tr.Nodes() {
		fmt.Printf("  %s: ", node)
		for k, mid := range res.Orders[node] {
			if k > 0 {
				fmt.Print(" < ")
			}
			orig, _ := tr.OriginOf(mid)
			fmt.Print(orig.Op)
		}
		fmt.Println()
	}
}

// addAfter builds an addAfter(a, b) request; "◦" denotes the sentinel.
func addAfter(a, b string) model.Op {
	anchor := model.Str(a)
	if anchor.Equal(spec.Sentinel) {
		anchor = spec.Sentinel
	}
	return model.Op{Name: spec.OpAddAfter, Arg: model.Pair(anchor, model.Str(b))}
}

func invoke(c *sim.Cluster, node model.NodeID, op model.Op) model.MsgID {
	_, mid, err := c.Invoke(node, op)
	if err != nil {
		log.Fatalf("invoke %s at %s: %v", op, node, err)
	}
	return mid
}

func deliver(c *sim.Cluster, node model.NodeID, mids ...model.MsgID) {
	for _, mid := range mids {
		if err := c.Deliver(node, mid); err != nil {
			log.Fatalf("deliver %s to %s: %v", mid, node, err)
		}
	}
}

func show(c *sim.Cluster, alg registry.Algorithm) {
	names := []string{"Alice", "Bob  ", "Carol"}
	for n := 0; n < c.N(); n++ {
		fmt.Printf("  %s (node %d) sees %s\n", names[n], n, alg.Abs(c.StateOf(model.NodeID(n))))
	}
}
