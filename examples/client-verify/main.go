// Client-verify machine-checks the paper's motivating client proof (Figs 9
// and 12) with the rely-guarantee logic of Sec 7, then cross-validates the
// verified postcondition by exhaustively model-checking the same client
// against the abstract machine of Sec 6 AND against the concrete RGA
// implementation — the two sides that the Abstraction Theorem connects.
package main

import (
	"fmt"
	"log"

	"repro/internal/crdts/registry"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/model"
	"repro/internal/refine"
	"repro/internal/spec"
)

const clientSrc = `
node t1 { addAfter("a", "b"); x := read(); }
node t2 { u := read(); if ("b" in u) { addAfter("a", "c"); } }
node t3 { v := read(); if ("c" in v) { addAfter("c", "d"); } y := read(); }`

func main() {
	prog := lang.MustParse(clientSrc)
	fmt.Println("the Fig 9 client of the list CRDT (initial list: a):")
	fmt.Println(clientSrc)

	// ------------------------------------------------------------------
	// 1. The rely-guarantee proof of Fig 12.
	// ------------------------------------------------------------------
	alphaB := logic.Act(0, spec.OpAddAfter, model.Pair(model.Str("a"), model.Str("b")))
	alphaC := logic.Act(1, spec.OpAddAfter, model.Pair(model.Str("a"), model.Str("c")))
	alphaD := logic.Act(2, spec.OpAddAfter, model.Pair(model.Str("c"), model.Str("d")))
	g1 := logic.RG{{Issues: alphaB}}                                   // true ; [α_b]
	g2 := logic.RG{{Requires: []logic.Action{alphaB}, Issues: alphaC}} // ⌈α_b⌉ ; [α_c]
	g3 := logic.RG{{Requires: []logic.Action{alphaC}, Issues: alphaD}} // ⌈α_c⌉ ; [α_d]

	post1 := parseExpr(`!("d" in x) || (s == x && x == ["a","c","d","b"])`)
	post3 := parseExpr(`!(s == ["a","c","d","b"]) || (y == s || y == ["a","c","d"])`)

	pf := logic.Proof{
		Ctx: logic.Ctx{
			Spec:    spec.ListSpec{},
			IsQuery: func(n model.OpName) bool { return n == spec.OpRead },
		},
		Init: model.List(model.Str("a")),
		Threads: []logic.ThreadProof{
			{Thread: prog.Threads[0], R: append(append(logic.RG{}, g2...), g3...), G: g1, Post: post1},
			{Thread: prog.Threads[1], R: append(append(logic.RG{}, g1...), g3...), G: g2},
			{Thread: prog.Threads[2], R: append(append(logic.RG{}, g1...), g2...), G: g3, Post: post3},
		},
	}
	if err := pf.Check(); err != nil {
		log.Fatalf("Fig 12 proof REJECTED: %v", err)
	}
	fmt.Println("① rely-guarantee proof (Fig 12) checked:")
	fmt.Println("   G_t1 = true ; [α_b]     G_t2 = ⌈α_b⌉ ; [α_c]     G_t3 = ⌈α_c⌉ ; [α_d]")
	fmt.Println("   ⊢ { s = a } C1 ∥ C2 ∥ C3 { d∈x ⇒ s=x=acdb  ∧  s=acdb ⇒ (y=s ∨ y=acd) }")

	// ------------------------------------------------------------------
	// 2. Cross-validation by model checking (the soundness of the logic is
	//    stated w.r.t. the abstract semantics; the Abstraction Theorem
	//    transfers it to the concrete implementation).
	// ------------------------------------------------------------------
	alg := registry.RGA()
	initOps := []model.Op{{Name: spec.OpAddAfter, Arg: model.Pair(spec.Sentinel, model.Str("a"))}}
	for _, side := range []struct {
		name string
		mk   func() refine.Runtime
	}{
		{"abstract machine (Sec 6)", func() refine.Runtime {
			rt := refine.NewAbstract(alg, 3)
			mustSetup(rt, initOps)
			return rt
		}},
		{"concrete RGA cluster", func() refine.Runtime {
			rt := refine.NewConcrete(alg, 3)
			mustSetup(rt, initOps)
			return rt
		}},
	} {
		behaviors, err := refine.Explorer{MaxStates: 500000}.Behaviors(prog, side.mk)
		if err != nil {
			log.Fatal(err)
		}
		violations := 0
		for _, b := range behaviors {
			x, y := b.Envs[0]["x"], b.Envs[2]["y"]
			if x.Contains(model.Str("d")) {
				acdb := model.List(model.Str("a"), model.Str("c"), model.Str("d"), model.Str("b"))
				acd := model.List(model.Str("a"), model.Str("c"), model.Str("d"))
				if !x.Equal(acdb) || (!y.Equal(x) && !y.Equal(acd)) {
					violations++
				}
			}
		}
		fmt.Printf("② model-checked %d terminated behaviours on the %s: %d postcondition violations\n",
			len(behaviors), side.name, violations)
		if violations > 0 {
			log.Fatal("the verified postcondition was violated — soundness bug!")
		}
	}
	fmt.Println("\nthe proof and the model checker agree: verification at the abstract level")
	fmt.Println("is sound for clients of the concrete implementation (Abstraction Theorem)")
}

func parseExpr(src string) lang.Expr {
	prog := lang.MustParse("node t { p := " + src + "; }")
	return prog.Threads[0].Body[0].(lang.Assign).E
}

func mustSetup(rt refine.Runtime, ops []model.Op) {
	for _, op := range ops {
		if _, err := rt.Invoke(0, op); err != nil {
			log.Fatal(err)
		}
	}
	for {
		chs := rt.Choices()
		if len(chs) == 0 {
			return
		}
		if err := rt.Apply(chs[0]); err != nil {
			log.Fatal(err)
		}
	}
}
