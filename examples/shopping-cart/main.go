// Shopping-cart contrasts the three replicated set semantics the paper
// verifies — the add-wins set, the remove-wins set, and the LWW-element set —
// on the same shopping-cart scenario, reproducing Fig 5(a) and the Sec 2.5
// client that the extended specification (Γ, ⊲⊳, ◀, ▷) exists to
// distinguish. The add-wins execution is certified against XACC.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	fig5a()
	sec25()
}

func op(name model.OpName, item string) model.Op {
	return model.Op{Name: name, Arg: model.Str(item)}
}

func must1(c *sim.Cluster, node model.NodeID, o model.Op) model.MsgID {
	_, mid, err := c.Invoke(node, o)
	if err != nil {
		log.Fatal(err)
	}
	return mid
}

func lookup(c *sim.Cluster, node model.NodeID, item string) bool {
	ret, _, err := c.Invoke(node, op(spec.OpLookup, item))
	if err != nil {
		log.Fatal(err)
	}
	b, _ := ret.AsBool()
	return b
}

// fig5a: the add-wins resolution of Fig 5(a). Customer A re-adds the phone
// to the cart concurrently with customer B clearing it; the add wins.
func fig5a() {
	fmt.Println("Fig 5(a) — add-wins set: a concurrent add survives a remove")
	alg := registry.AWSet()
	c := sim.NewCluster(alg.New(), 2, sim.WithCausalDelivery())
	// B puts the phone in the shared cart; A sees it.
	add1 := must1(c, 1, op(spec.OpAdd, "phone"))
	if err := c.Deliver(0, add1); err != nil {
		log.Fatal(err)
	}
	// A adds the phone again (a second tagged instance) while B concurrently
	// empties the cart — B's removal collects only the instance B has seen.
	add2 := must1(c, 0, op(spec.OpAdd, "phone"))
	rmv := must1(c, 1, op(spec.OpRemove, "phone"))
	if err := c.Deliver(0, rmv); err != nil {
		log.Fatal(err)
	}
	if err := c.Deliver(1, add2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  A's cart has the phone: %v; B's cart has the phone: %v (add wins on both)\n",
		lookup(c, 0, "phone"), lookup(c, 1, "phone"))
	res, err := core.CheckXACC(c.Trace(), core.XProblem{
		Problem: core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs},
		XSpec:   alg.XSpec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("XACC violated: %s", res.Reason)
	}
	fmt.Println("  XACC certified: remove(phone) ◀ add(phone) is respected")
	fmt.Println()
}

// sec25 runs the Sec 2.5 distinguishing client — both customers add then
// remove the same item, then read — on all three set semantics, using the
// schedule where each remove sees only the local add.
func sec25() {
	fmt.Println("Sec 2.5 — the client that tells the three sets apart")
	fmt.Println("  both nodes run: add(gift); remove(gift); read()")
	for _, alg := range []registry.Algorithm{registry.AWSet(), registry.RWSet(), registry.LWWSet()} {
		var opts []sim.Option
		if alg.NeedsCausal {
			opts = append(opts, sim.WithCausalDelivery())
		}
		c := sim.NewCluster(alg.New(), 2, opts...)
		addA := must1(c, 0, op(spec.OpAdd, "gift"))
		rmvA := must1(c, 0, op(spec.OpRemove, "gift"))
		addB := must1(c, 1, op(spec.OpAdd, "gift"))
		rmvB := must1(c, 1, op(spec.OpRemove, "gift"))
		// Each removal saw only its own node's add. The reads happen after
		// the other node's ADD has arrived but before its REMOVE — the
		// schedule on which the three semantics disagree.
		if err := c.Deliver(0, addB); err != nil {
			log.Fatal(err)
		}
		if err := c.Deliver(1, addA); err != nil {
			log.Fatal(err)
		}
		x := lookup(c, 0, "gift")
		y := lookup(c, 1, "gift")
		// Drain the removes too so the run completes.
		if err := c.Deliver(0, rmvB); err != nil {
			log.Fatal(err)
		}
		if err := c.Deliver(1, rmvA); err != nil {
			log.Fatal(err)
		}
		verdict := "0∈x ⇒ 0∉y holds"
		if x && y {
			verdict = "0∈x ∧ 0∈y — the postcondition FAILS (only possible here)"
		}
		fmt.Printf("  %-8s x = %-5v y = %-5v %s\n", alg.Name+":", x, y, verdict)
	}
	fmt.Println("\n  the aw-set keeps the gift (each remove missed the other's add);")
	fmt.Println("  rw-set and lww-set discard it — exactly the paper's point that the")
	fmt.Println("  X-wins strategy must be part of the specification (◀ and ▷)")
}
