// Collab-editor replays the paper's list-CRDT figures on both list
// implementations — RGA (Fig 2) and the continuous sequence — and shows the
// phenomena that motivate ACC:
//
//   - Fig 3(a): concurrent inserts after the same anchor resolve identically
//     on every node (the higher-stamped insert lands closer to the anchor);
//   - Fig 3(b): visibility is preserved — an insert issued after observing
//     another is never reordered before it on the observing node;
//   - Fig 4: the continuous sequence can reach apqced, an outcome that
//     forces the two nodes to arbitrate non-conflicting operations in
//     different orders — the reason ACC allows per-node arbitration orders.
package main

import (
	"fmt"
	"log"
	"math/big"
	"strings"

	"repro/internal/core"
	"repro/internal/crdts/cseq"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
)

func main() {
	fig3a()
	fig3b()
	fig4()
}

func addAfter(a, b string) model.Op {
	anchor := model.Str(a)
	if anchor.Equal(spec.Sentinel) {
		anchor = spec.Sentinel
	}
	return model.Op{Name: spec.OpAddAfter, Arg: model.Pair(anchor, model.Str(b))}
}

func must1(c *sim.Cluster, node model.NodeID, op model.Op) model.MsgID {
	_, mid, err := c.Invoke(node, op)
	if err != nil {
		log.Fatal(err)
	}
	return mid
}

func read(c *sim.Cluster, node model.NodeID) string {
	ret, _, err := c.Invoke(node, model.Op{Name: spec.OpRead})
	if err != nil {
		log.Fatal(err)
	}
	return flat(ret)
}

func flat(list model.Value) string {
	elems, _ := list.AsList()
	var b strings.Builder
	for _, e := range elems {
		s, _ := e.AsString()
		b.WriteString(s)
	}
	return b.String()
}

func deliver(c *sim.Cluster, node model.NodeID, mids ...model.MsgID) {
	for _, mid := range mids {
		if err := c.Deliver(node, mid); err != nil {
			log.Fatal(err)
		}
	}
}

func certifyACC(c *sim.Cluster, alg registry.Algorithm, label string) {
	res, err := core.CheckACC(c.Trace(), core.Problem{Object: c.Object(), Spec: alg.Spec, Abs: alg.Abs})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("%s: ACC violated: %s", label, res.Reason)
	}
	fmt.Printf("  ACC certified for %s\n\n", label)
}

// fig3a: t1 and t2 concurrently insert b and c after a on RGA.
func fig3a() {
	fmt.Println("Fig 3(a) — concurrent inserts on RGA:")
	alg := registry.RGA()
	c := sim.NewCluster(alg.New(), 2)
	a := must1(c, 0, addAfter("◦", "a"))
	deliver(c, 1, a)
	b := must1(c, 0, addAfter("a", "b"))
	cc := must1(c, 1, addAfter("a", "c"))
	deliver(c, 1, b)
	deliver(c, 0, cc)
	x, y := read(c, 0), read(c, 1)
	fmt.Printf("  t1 reads %q, t2 reads %q (paper: both acb)\n", x, y)
	certifyACC(c, alg, "Fig 3(a)")
}

// fig3b: t2 inserts c only after observing b, so every node orders b first.
func fig3b() {
	fmt.Println("Fig 3(b) — visibility preserved on RGA:")
	alg := registry.RGA()
	c := sim.NewCluster(alg.New(), 2)
	a := must1(c, 0, addAfter("◦", "a"))
	deliver(c, 1, a)
	b := must1(c, 0, addAfter("a", "b"))
	deliver(c, 1, b)
	u := read(c, 1)
	fmt.Printf("  t2 reads u = %q after receiving addAfter(a,b)\n", u)
	cc := must1(c, 1, addAfter("a", "c"))
	deliver(c, 0, cc)
	x, y := read(c, 0), read(c, 1)
	fmt.Printf("  final reads: x = %q, y = %q (paper: both acb — c is newer, so it sits closer to a)\n", x, y)
	certifyACC(c, alg, "Fig 3(b)")
}

// fig4: the continuous sequence reads apqced, which forces the two nodes to
// arbitrate the non-conflicting pairs (①,④) and (②,③) differently.
func fig4() {
	fmt.Println("Fig 4 — per-node arbitration orders on the continuous sequence:")
	// The outcome depends on which tags the gaps happen to produce; realise
	// the paper's "as long as the tag of ① is smaller than ④'s …" with an
	// explicit chooser.
	chosen := map[model.MsgID]*big.Rat{
		3: big.NewRat(-2, 1), // ① p under a
		4: big.NewRat(5, 1),  // ② d under c
		5: big.NewRat(4, 1),  // ③ e under c (below ②)
		6: big.NewRat(-1, 1), // ④ q under a (above ①)
	}
	obj := cseq.NewWithChooser(func(lo, hi *big.Rat, origin model.NodeID, mid model.MsgID) *big.Rat {
		if r, ok := chosen[mid]; ok {
			return r
		}
		return cseq.Midpoint(lo, hi, origin, mid)
	})
	alg := registry.CSeq()
	c := sim.NewCluster(obj, 2)
	a := must1(c, 0, addAfter("◦", "a"))
	deliver(c, 1, a)
	cOp := must1(c, 0, addAfter("a", "c"))
	deliver(c, 1, cOp)
	p := must1(c, 0, addAfter("a", "p")) // ①
	d := must1(c, 0, addAfter("c", "d")) // ②
	e := must1(c, 1, addAfter("c", "e")) // ③
	q := must1(c, 1, addAfter("a", "q")) // ④
	deliver(c, 1, p, d)
	deliver(c, 0, e, q)
	u, v := read(c, 0), read(c, 1)
	fmt.Printf("  t1 reads %q, t2 reads %q (paper: both apqced)\n", u, v)
	res, err := core.CheckACC(c.Trace(), core.Problem{Object: obj, Spec: alg.Spec, Abs: alg.Abs})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("Fig 4: ACC violated: %s", res.Reason)
	}
	tr := c.Trace()
	fmt.Println("  witnessing arbitration orders (note ①..④ ordered differently per node):")
	for _, node := range tr.Nodes() {
		var parts []string
		for _, mid := range res.Orders[node] {
			if mid < p { // skip the shared prefix for readability
				continue
			}
			orig, _ := tr.OriginOf(mid)
			parts = append(parts, fmt.Sprintf("%s", orig.Op))
		}
		fmt.Printf("    %s: %s\n", node, strings.Join(parts, " < "))
	}
	fmt.Println("  ACC certified for Fig 4 — coherence only binds conflicting pairs")
}
