// Package repro is an executable reproduction of "Abstraction for
// Conflict-Free Replicated Data Types" (Liang & Feng, PLDI 2021).
//
// The repository implements, from scratch and on the standard library only:
//
//   - the nine CRDT algorithms the paper verifies (internal/crdts/...),
//   - their atomic specifications (Γ, ⊲⊳, ◀, ▷) (internal/spec),
//   - a replicated-cluster simulator with the paper's network assumptions
//     (internal/sim),
//   - decision procedures for the paper's correctness conditions ACC, XACC
//     and trace convergence (internal/core),
//   - the abstract operational semantics of Sec 6 and a contextual
//     refinement checker for the Abstraction Theorem (internal/absmachine,
//     internal/refine),
//   - the client programming language of Fig 6 (internal/lang),
//   - the rely-guarantee client logic of Sec 7 with a proof-outline checker
//     (internal/logic), and
//   - the CRDT-TS proof method of Sec 8 as executable obligations
//     (internal/proofmethod).
//
// See README.md for the tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for the reproduction results.
// The benchmarks in bench_test.go regenerate every figure-level experiment.
package repro
