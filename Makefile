# Convenience targets for the reproduction. Everything is plain `go` —
# these just bundle the invocations the docs mention.

.PHONY: all build test short race ci chaos sockets fuzz soak bench bench-md bench-transport repro examples fmt vet

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -l .

test:
	go test ./...

# Short mode skips the 5-node/300-step soak runs.
short:
	go test -short ./...

# Race-detector pass over the short suite (the parallel explorer and the
# concurrent ACC/XACC candidate enumeration run under it).
race:
	go test -short -race ./...

# Mirror of the CI workflow's push/PR job (.github/workflows/ci.yml).
# staticcheck runs when installed (CI installs it; locally it is optional —
# nothing here fetches dependencies).
ci:
	go build ./...
	go vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping (CI runs it)"; fi
	go test -short -race ./...
	go test -race ./internal/transport/

# Mirror of CI's chaos + fuzz smoke: seeded fault-injection runs over every
# registry algorithm, then a short coverage-guided pass over both fuzz
# targets. Each chaos line is replayable — rerun with the printed seed.
chaos:
	go run ./cmd/crdt-sim -chaos -algo rga -nodes 3 -ops 10 -seed 1 -seeds 5
	go run ./cmd/crdt-sim -chaos -algo aw-set -nodes 3 -ops 10 -seed 1 -seeds 5
	go run ./cmd/crdt-sim -chaos -algo rga -nodes 3 -ops 10 -seed 1 -seeds 5 -snapshot-every 4
	@for a in counter g-set lww-register lww-set 2p-set cseq rw-set; do \
		go run ./cmd/crdt-sim -chaos -algo $$a -nodes 3 -ops 10 -seed 1 -seeds 3 | tail -1; done
	go test -run '^$$' -fuzz '^FuzzClusterDelivery$$' -fuzztime 30s ./internal/sim/

# Mirror of CI's socket-transport smoke: the in-repo two-OS-process test plus
# the node/manifest multiplexing tests, the crdt-sim two-process unix demo,
# a two-process multi-object demo (four mixed-kind objects over one socket
# pair), checking byte-identical canonical states per object, a weighted
# per-object scheduler demo (8:1 weights plus a 5ms delay override) whose
# scheduler ledger the binary itself checks for balance, and a parallel
# receive-pipeline demo (-recv-workers) whose receive ledger the binary
# checks against the wire totals.
sockets:
	go test -run 'TestStream|TestNode|TestManifest' ./internal/transport/
	@D=$$(mktemp -d); \
	go build -o "$$D/crdt-sim" ./cmd/crdt-sim; \
	"$$D/crdt-sim" -transport unix -addrs "$$D/a.sock,$$D/b.sock" -node 0 -algo rga -ops 20 -seed 7 > "$$D/p0.log" & \
	sleep 0.2; \
	"$$D/crdt-sim" -transport unix -addrs "$$D/a.sock,$$D/b.sock" -node 1 -algo rga -ops 20 -seed 7 > "$$D/p1.log"; \
	wait; cat "$$D/p0.log" "$$D/p1.log"; \
	s0=$$(awk '/canonical state/{print $$NF}' "$$D/p0.log"); \
	s1=$$(awk '/canonical state/{print $$NF}' "$$D/p1.log"); \
	[ -n "$$s0" ] && [ "$$s0" = "$$s1" ] || { echo "canonical states diverged"; exit 1; }
	@D=$$(mktemp -d); \
	go build -o "$$D/crdt-sim" ./cmd/crdt-sim; \
	"$$D/crdt-sim" -transport unix -addrs "$$D/a.sock,$$D/b.sock" -node 0 -objects 4 -mixed -ops 12 -seed 7 -batch-frames 4 -flush-every 3ms > "$$D/p0.log" & \
	sleep 0.2; \
	"$$D/crdt-sim" -transport unix -addrs "$$D/a.sock,$$D/b.sock" -node 1 -objects 4 -mixed -ops 12 -seed 7 > "$$D/p1.log"; \
	wait; cat "$$D/p0.log" "$$D/p1.log"; \
	for o in 1 2 3 4; do \
		s0=$$(awk -v o="$$o" '$$3=="obj" && $$4==o && /canonical state/{print $$NF}' "$$D/p0.log"); \
		s1=$$(awk -v o="$$o" '$$3=="obj" && $$4==o && /canonical state/{print $$NF}' "$$D/p1.log"); \
		[ -n "$$s0" ] && [ "$$s0" = "$$s1" ] || { echo "object $$o diverged"; exit 1; }; \
	done; \
	grep -q 'over 1 connection(s)' "$$D/p0.log" || { echo "node 0 opened more than one socket pair"; exit 1; }
	@D=$$(mktemp -d); \
	go build -o "$$D/crdt-sim" ./cmd/crdt-sim; \
	SCHED="-objects 4 -mixed -ops 12 -seed 7 -batch-frames 64 -weights 1:8,2:1 -obj-max-delay 2:5ms"; \
	"$$D/crdt-sim" -transport unix -addrs "$$D/a.sock,$$D/b.sock" -node 0 $$SCHED > "$$D/p0.log" & \
	sleep 0.2; \
	"$$D/crdt-sim" -transport unix -addrs "$$D/a.sock,$$D/b.sock" -node 1 $$SCHED > "$$D/p1.log"; \
	wait; cat "$$D/p0.log" "$$D/p1.log"; \
	for o in 1 2 3 4; do \
		s0=$$(awk -v o="$$o" '$$3=="obj" && $$4==o && /canonical state/{print $$NF}' "$$D/p0.log"); \
		s1=$$(awk -v o="$$o" '$$3=="obj" && $$4==o && /canonical state/{print $$NF}' "$$D/p1.log"); \
		[ -n "$$s0" ] && [ "$$s0" = "$$s1" ] || { echo "object $$o diverged under the weighted scheduler"; exit 1; }; \
	done; \
	grep -q 'scheduler queued/drained' "$$D/p0.log" || { echo "node 0 printed no scheduler ledger"; exit 1; }
	@D=$$(mktemp -d); \
	go build -o "$$D/crdt-sim" ./cmd/crdt-sim; \
	PIPED="-objects 4 -mixed -ops 12 -seed 7 -batch-frames 4 -flush-every 3ms -recv-workers 2"; \
	"$$D/crdt-sim" -transport unix -addrs "$$D/a.sock,$$D/b.sock" -node 0 $$PIPED > "$$D/p0.log" & \
	sleep 0.2; \
	"$$D/crdt-sim" -transport unix -addrs "$$D/a.sock,$$D/b.sock" -node 1 $$PIPED > "$$D/p1.log"; \
	wait; cat "$$D/p0.log" "$$D/p1.log"; \
	for o in 1 2 3 4; do \
		s0=$$(awk -v o="$$o" '$$3=="obj" && $$4==o && /canonical state/{print $$NF}' "$$D/p0.log"); \
		s1=$$(awk -v o="$$o" '$$3=="obj" && $$4==o && /canonical state/{print $$NF}' "$$D/p1.log"); \
		[ -n "$$s0" ] && [ "$$s0" = "$$s1" ] || { echo "object $$o diverged under the receive pipeline"; exit 1; }; \
	done; \
	grep -q 'receive pipeline workers=2' "$$D/p0.log" || { echo "node 0 printed no receive-pipeline ledger"; exit 1; }

fuzz:
	go test -run '^$$' -fuzz '^FuzzCheckACC$$' -fuzztime 30s ./internal/core/
	go test -run '^$$' -fuzz '^FuzzClusterDelivery$$' -fuzztime 30s ./internal/sim/
	go test -run '^$$' -fuzz '^FuzzCodecRoundTrip$$' -fuzztime 30s ./internal/codec/
	go test -run '^$$' -fuzz '^FuzzSnapshotInstall$$' -fuzztime 30s ./internal/transport/

soak:
	go test -run TestSoak ./internal/conformance/

# Full benchmark sweep; also regenerates the checked-in machine-readable
# explorer ablation (BENCH_explore.json) that the nightly CI job uploads.
bench:
	go test -bench=. -benchmem . > bench.out; status=$$?; cat bench.out; \
	  [ $$status -eq 0 ] && go run ./cmd/bench-report -json -group ExploreParallel -out BENCH_explore.json < bench.out; \
	  rm -f bench.out; exit $$status

# Pipe benchmarks through the markdown renderer.
bench-md:
	go test -bench=. -benchmem . | go run ./cmd/bench-report

# Mirror of CI's transport-bench job: the stream-throughput sweep (network ×
# batch size × payload × receive-pipeline workers) run 3× and collapsed to
# each case's fastest run (min-of-N damps scheduler noise), rendered to
# bench-current.json and gated against the checked-in BENCH_transport.json —
# any case more than 25% slower, or past +34% allocs/op, fails. The output
# is deliberately NOT named like the baseline: bench-report refuses a -out
# that shadows the baseline's filename outside its canonical path. To
# regenerate the baseline after an intentional perf change, rerun the sweep
# with `-worst -out BENCH_transport.json` (see EXPERIMENTS.md).
bench-transport:
	go test -run '^$$' -bench 'BenchmarkStreamThroughput' -benchtime=0.3s -count=3 -benchmem ./internal/transport/ > bench_transport.out || { s=$$?; cat bench_transport.out; rm -f bench_transport.out; exit $$s; }
	cat bench_transport.out
	go run ./cmd/bench-report -json -group StreamThroughput -best -out bench-current.json -baseline BENCH_transport.json -tolerance 0.25 -alloc-tolerance 0.34 < bench_transport.out; s=$$?; rm -f bench_transport.out; exit $$s

# One-command reproduction of every paper experiment.
repro:
	go run ./cmd/paper-report

examples:
	go run ./examples/quickstart
	go run ./examples/collab-editor
	go run ./examples/shopping-cart
	go run ./examples/client-verify
	go run ./examples/todo-board
	go run ./examples/offline-sync
