// Command acc-check generates randomized executions of a CRDT algorithm and
// decides its correctness condition on every trace: ACC (Defs 2–3) for
// UCR algorithms — via the ↣-derived witness or the complete bounded search —
// and XACC (Def 9) for the X-wins sets.
//
// The explore mode instead decides SEC over *every* delivery interleaving of
// short generated scripts, using the parallel schedule-exploration engine
// (sim.ExploreSchedulesParallel) with its commutativity reduction.
//
// Usage:
//
//	acc-check -algo rga -seeds 20 -steps 30 [-mode witness|exhaustive]
//	acc-check -algo pn-counter -mode explore -workers 4 -stats
//	acc-check -algo rga -save failing.json     # save the first failing schedule
//	acc-check -replay failing.json             # re-check a saved schedule
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/crdts/registry"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		algo    = flag.String("algo", "rga", "algorithm name, or 'all'")
		nodes   = flag.Int("nodes", 3, "cluster size")
		steps   = flag.Int("steps", 30, "scheduler steps per run")
		seeds   = flag.Int("seeds", 20, "number of randomized runs")
		mode    = flag.String("mode", "witness", "witness (scales), exhaustive (complete, small traces) or explore (all interleavings, parallel)")
		workers = flag.Int("workers", 0, "explorer workers for -mode explore (0 = GOMAXPROCS)")
		stats   = flag.Bool("stats", false, "print explorer statistics (explore mode)")
		save    = flag.String("save", "", "write the first failing schedule (or, if none fails, the first schedule) to this file")
		replay  = flag.String("replay", "", "re-check a schedule saved with -save instead of generating traces")
	)
	flag.Parse()
	if *replay != "" {
		os.Exit(replaySchedule(*replay, *mode))
	}
	savePath = *save
	algs := registry.All()
	if *algo != "all" {
		alg, ok := registry.ByName(*algo)
		if !ok {
			fmt.Fprintf(os.Stderr, "acc-check: unknown algorithm %q\n", *algo)
			os.Exit(2)
		}
		algs = []registry.Algorithm{alg}
	}
	failures := 0
	for _, alg := range algs {
		if *mode == "explore" {
			failures += explore(alg, *nodes, *steps, *seeds, *workers, *stats)
		} else {
			failures += check(alg, *nodes, *steps, *seeds, *mode)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// explore decides SEC over every delivery interleaving of short generated
// scripts using the parallel exploration engine.
func explore(alg registry.Algorithm, nodes, steps, seeds, workers int, showStats bool) int {
	ops := steps
	if ops > 6 {
		ops = 6 // complete interleaving exploration needs short scripts
	}
	fmt.Printf("%-14s %-5s mode=%-10s nodes=%d ops=%d: ", alg.Name, "SEC", "explore", nodes, ops)
	failures, checked := 0, 0
	var agg sim.ExploreStats
	for seed := int64(1); seed <= int64(seeds); seed++ {
		script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, seed, alg.NeedsCausal)
		_, st, err := sim.ExploreSchedulesParallel(alg.New(), nodes, script, alg.NeedsCausal,
			sim.ParallelConfig{Workers: workers}, func(c *sim.Cluster) error {
				if _, ok := c.Converged(alg.Abs); !ok {
					return fmt.Errorf("replicas diverged at quiescence")
				}
				return nil
			})
		switch {
		case err == nil:
			checked++
		default:
			failures++
			fmt.Printf("\n  seed %d: SEC FAILS: %v\n", seed, err)
		}
		agg.States += st.States
		agg.Terminals += st.Terminals
		agg.Deduped += st.Deduped
		agg.Pruned += st.Pruned
		agg.Revisits += st.Revisits
		if st.PeakFrontier > agg.PeakFrontier {
			agg.PeakFrontier = st.PeakFrontier
		}
	}
	if failures == 0 {
		fmt.Printf("%d/%d scripts satisfy SEC on every schedule\n", checked, seeds)
	}
	if showStats {
		fmt.Printf("  explorer: states=%d terminals=%d deduped=%d pruned=%d revisits=%d peak-frontier=%d\n",
			agg.States, agg.Terminals, agg.Deduped, agg.Pruned, agg.Revisits, agg.PeakFrontier)
	}
	return failures
}

func check(alg registry.Algorithm, nodes, steps, seeds int, mode string) int {
	cond := "ACC"
	if alg.IsX() {
		cond = "XACC"
	}
	if mode == "exhaustive" {
		nodes = 2
		if steps > 8 {
			steps = 8 // complete decisions need bounded traces
		}
	}
	fmt.Printf("%-14s %-5s mode=%-10s nodes=%d steps=%d: ", alg.Name, cond, modeName(alg, mode), nodes, steps)
	failures := 0
	checked := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		w := sim.Workload{
			Object: alg.New(),
			Abs:    alg.Abs,
			Gen:    sim.GenFunc(alg.GenOp),
			Nodes:  nodes,
			Steps:  steps,
			Causal: alg.NeedsCausal,
		}
		tr := w.Run(seed).Trace()
		if seed == 1 {
			saveTrace(alg, tr, nodes)
		}
		p := core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs}
		var res core.Result
		var err error
		switch {
		case alg.IsX() && mode == "exhaustive":
			res, err = core.CheckXACC(tr, core.XProblem{Problem: p, XSpec: alg.XSpec})
		case alg.IsX():
			res, err = core.CheckXACCWitness(tr, core.XProblem{Problem: p, XSpec: alg.XSpec})
		case mode == "exhaustive":
			res, err = core.CheckACC(tr, p)
		default:
			res, err = core.CheckACCWitness(tr, p, alg.TSOrder)
		}
		if err != nil {
			continue // trace exceeded the decidable bound; skip
		}
		checked++
		if !res.OK {
			failures++
			fmt.Printf("\n  seed %d: %s FAILS: %s\n", seed, cond, res.Reason)
		}
		if cvErr := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); cvErr != nil {
			failures++
			fmt.Printf("\n  seed %d: SEC FAILS: %v\n", seed, cvErr)
		}
	}
	if failures == 0 {
		fmt.Printf("%d/%d traces satisfy %s and SEC\n", checked, seeds, cond)
	}
	return failures
}

func modeName(alg registry.Algorithm, mode string) string {
	return strings.ToLower(mode)
}

// savePath, when non-empty, receives the first failing schedule (or the
// first schedule overall if everything passes).
var savePath string

// saveTrace writes the schedule driving tr to savePath once.
func saveTrace(alg registry.Algorithm, tr trace.Trace, nodes int) {
	if savePath == "" {
		return
	}
	s, err := sched.FromTrace(tr, nodes, alg.NeedsCausal, alg.Name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acc-check: extracting schedule: %v\n", err)
		return
	}
	data, err := s.Marshal()
	if err != nil {
		fmt.Fprintf(os.Stderr, "acc-check: %v\n", err)
		return
	}
	if err := os.WriteFile(savePath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "acc-check: %v\n", err)
		return
	}
	fmt.Printf("schedule saved to %s\n", savePath)
	savePath = ""
}

// replaySchedule re-checks a saved schedule and returns the exit code.
func replaySchedule(path, mode string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acc-check: %v\n", err)
		return 2
	}
	s, err := sched.Unmarshal(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acc-check: %v\n", err)
		return 2
	}
	alg, ok := registry.ByName(s.Algorithm)
	if !ok {
		fmt.Fprintf(os.Stderr, "acc-check: schedule names unknown algorithm %q\n", s.Algorithm)
		return 2
	}
	c, err := s.Replay(alg.New())
	if err != nil {
		fmt.Fprintf(os.Stderr, "acc-check: replay: %v\n", err)
		return 2
	}
	tr := c.Trace()
	fmt.Printf("replayed %d events of %s:\n", len(tr), alg.Name)
	p := core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs}
	var res core.Result
	switch {
	case alg.IsX() && mode == "exhaustive":
		res, err = core.CheckXACC(tr, core.XProblem{Problem: p, XSpec: alg.XSpec})
	case alg.IsX():
		res, err = core.CheckXACCWitness(tr, core.XProblem{Problem: p, XSpec: alg.XSpec})
	case mode == "exhaustive":
		res, err = core.CheckACC(tr, p)
	default:
		res, err = core.CheckACCWitness(tr, p, alg.TSOrder)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "acc-check: %v\n", err)
		return 2
	}
	if !res.OK {
		fmt.Printf("  consistency FAILS: %s\n", res.Reason)
		return 1
	}
	if err := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); err != nil {
		fmt.Printf("  SEC FAILS: %v\n", err)
		return 1
	}
	fmt.Println("  consistency and SEC hold")
	return 0
}
