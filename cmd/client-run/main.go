// Command client-run executes a client program (in the language of Fig 6)
// against a CRDT algorithm — either once under a random schedule, or
// exhaustively over all bounded schedules, printing every observable
// behaviour. With -abstract the program runs on the Sec 6 abstract machine
// instead of the concrete implementation, making the two sides of the
// Abstraction Theorem directly comparable from the shell.
//
// Usage:
//
//	client-run -algo rga -e 'node t1 { addAfter(sentinel, "a"); x := read(); }
//	                         node t2 { y := read(); }' -mode all
//	client-run -algo lww-set -file client.crdt -mode random -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/crdts/registry"
	"repro/internal/lang"
	"repro/internal/refine"
)

func main() {
	var (
		algo     = flag.String("algo", "rga", "algorithm name")
		file     = flag.String("file", "", "client program file")
		src      = flag.String("e", "", "client program source (overrides -file)")
		mode     = flag.String("mode", "random", "random (one schedule) or all (exhaustive)")
		seed     = flag.Int64("seed", 1, "seed for -mode random")
		abstract = flag.Bool("abstract", false, "run on the Sec 6 abstract machine instead of the implementation")
		budget   = flag.Int("budget", 200000, "state budget for -mode all")
	)
	flag.Parse()
	alg, ok := registry.ByName(*algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "client-run: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	source := *src
	if source == "" {
		if *file == "" {
			fmt.Fprintln(os.Stderr, "client-run: provide -e or -file")
			os.Exit(2)
		}
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "client-run: %v\n", err)
			os.Exit(2)
		}
		source = string(data)
	}
	prog, err := lang.Parse(source)
	if err != nil {
		fmt.Fprintf(os.Stderr, "client-run: %v\n", err)
		os.Exit(2)
	}
	n := len(prog.Threads)
	newRT := func() refine.Runtime {
		if *abstract {
			return refine.NewAbstract(alg, n)
		}
		return refine.NewConcrete(alg, n)
	}
	fmt.Print(lang.Format(prog))
	side := "concrete " + alg.Name
	if *abstract {
		side = "abstract machine over " + alg.Spec.Name()
	}
	switch *mode {
	case "random":
		b, err := refine.RunRandom(prog, newRT(), *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "client-run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("one %s execution (seed %d):\n", side, *seed)
		printBehavior(b)
	case "all":
		behaviors, err := refine.Explorer{MaxStates: *budget}.Behaviors(prog, newRT)
		if err != nil {
			fmt.Fprintf(os.Stderr, "client-run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%d distinct terminated behaviours on the %s:\n", len(behaviors), side)
		keys := make([]string, 0, len(behaviors))
		for k := range behaviors {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			fmt.Printf("%3d. %s\n", i+1, k)
		}
	default:
		fmt.Fprintf(os.Stderr, "client-run: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func printBehavior(b refine.Behavior) {
	for i := range b.Names {
		fmt.Printf("  %s:\n", b.Names[i])
		for _, h := range b.Histories[i] {
			fmt.Printf("    %s\n", h)
		}
		fmt.Printf("    final: %s\n", b.Envs[i].Key())
		if b.Errs[i] != "" {
			fmt.Printf("    FAILED: %s\n", b.Errs[i])
		}
	}
}
