// Command bench-report turns `go test -bench` output into the markdown
// tables EXPERIMENTS.md records — or, with -json, into the machine-readable
// arrays checked in as BENCH_*.json — grouping sub-benchmarks under their
// parent:
//
//	go test -bench=. -benchmem . | go run ./cmd/bench-report
//	go test -bench=ExploreParallel . | go run ./cmd/bench-report -json -group ExploreParallel -out BENCH_explore.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchreport"
)

func main() {
	var (
		asJSON = flag.Bool("json", false, "emit JSON rows instead of markdown tables")
		out    = flag.String("out", "", "write to this file instead of stdout")
		group  = flag.String("group", "", "keep only rows of this benchmark group (name without the Benchmark prefix)")
	)
	flag.Parse()
	rows, err := benchreport.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
		os.Exit(1)
	}
	if *group != "" {
		rows = benchreport.Filter(rows, *group)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "bench-report: no benchmark lines found on stdin")
		os.Exit(1)
	}
	var rendered []byte
	if *asJSON {
		rendered, err = benchreport.JSON(rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
			os.Exit(1)
		}
	} else {
		rendered = []byte(benchreport.Markdown(rows))
	}
	if *out == "" {
		os.Stdout.Write(rendered)
		return
	}
	if err := os.WriteFile(*out, rendered, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
		os.Exit(1)
	}
}
