// Command bench-report turns `go test -bench` output into the markdown
// tables EXPERIMENTS.md records, grouping sub-benchmarks under their parent:
//
//	go test -bench=. -benchmem . | go run ./cmd/bench-report
package main

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/benchreport"
)

func main() {
	rows, err := benchreport.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "bench-report: no benchmark lines found on stdin")
		os.Exit(1)
	}
	fmt.Print(benchreport.Markdown(rows))
}
