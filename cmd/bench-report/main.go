// Command bench-report turns `go test -bench` output into the markdown
// tables EXPERIMENTS.md records — or, with -json, into the machine-readable
// arrays checked in as BENCH_*.json — grouping sub-benchmarks under their
// parent:
//
//	go test -bench=. -benchmem . | go run ./cmd/bench-report
//	go test -bench=ExploreParallel . | go run ./cmd/bench-report -json -group ExploreParallel -out BENCH_explore.json
//
// With -baseline it also gates the parsed rows against a checked-in
// BENCH_*.json: any case whose ns/op worsened by more than -tolerance exits
// nonzero (after writing -out, so the artifact of a failing run survives for
// inspection). -alloc-tolerance and -bytes-tolerance extend the gate to
// allocs/op and B/op (negative, the default, leaves each disabled):
//
//	go test -bench=StreamThroughput -benchmem ./internal/transport/ | go run ./cmd/bench-report -json -baseline BENCH_transport.json -tolerance 0.25 -alloc-tolerance 0.34
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/benchreport"
)

func main() {
	var (
		asJSON    = flag.Bool("json", false, "emit JSON rows instead of markdown tables")
		out       = flag.String("out", "", "write to this file instead of stdout")
		group     = flag.String("group", "", "keep only rows of this benchmark group (name without the Benchmark prefix)")
		baseline  = flag.String("baseline", "", "gate against this BENCH_*.json baseline: exit 1 when a case regresses past -tolerance")
		tolerance = flag.Float64("tolerance", 0.25, "allowed ns/op growth over the baseline before the gate fails (0.25 = +25%)")
		allocTol  = flag.Float64("alloc-tolerance", -1, "allowed allocs/op growth over the baseline (0.34 = +34%); negative disables the allocs gate")
		bytesTol  = flag.Float64("bytes-tolerance", -1, "allowed B/op growth over the baseline; negative disables the bytes gate")
		best      = flag.Bool("best", false, "collapse duplicate cases (go test -count=N) to each case's fastest run")
		worst     = flag.Bool("worst", false, "collapse duplicate cases to each case's slowest run (for recording a conservative baseline)")
	)
	flag.Parse()
	// A baseline-named output anywhere but the baseline's own path is how a
	// stray bench_transport.json once landed in the repo root: a run writes
	// what looks like the checked-in baseline, and a later `git add -A`
	// commits it. Refuse the footgun — write either the canonical baseline
	// (same cleaned path) or a file that cannot be mistaken for it.
	if *out != "" && *baseline != "" &&
		strings.EqualFold(filepath.Base(*out), filepath.Base(*baseline)) &&
		filepath.Clean(*out) != filepath.Clean(*baseline) {
		fmt.Fprintf(os.Stderr,
			"bench-report: -out %q shadows the baseline %q outside its canonical path; name the output differently (e.g. bench-current.json) or write the baseline in place\n",
			*out, *baseline)
		os.Exit(1)
	}
	rows, err := benchreport.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
		os.Exit(1)
	}
	if *group != "" {
		rows = benchreport.Filter(rows, *group)
	}
	if *best && *worst {
		fmt.Fprintln(os.Stderr, "bench-report: -best and -worst are mutually exclusive")
		os.Exit(1)
	}
	if *best {
		rows = benchreport.Best(rows)
	}
	if *worst {
		rows = benchreport.Worst(rows)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "bench-report: no benchmark lines found on stdin")
		os.Exit(1)
	}
	var rendered []byte
	if *asJSON {
		rendered, err = benchreport.JSON(rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
			os.Exit(1)
		}
	} else {
		rendered = []byte(benchreport.Markdown(rows))
	}
	if *out == "" {
		os.Stdout.Write(rendered)
	} else if err := os.WriteFile(*out, rendered, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
		os.Exit(1)
	}
	if *baseline == "" {
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
		os.Exit(1)
	}
	base, err := benchreport.ReadJSON(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-report: %v\n", err)
		os.Exit(1)
	}
	tol := benchreport.Tolerance{NsPerOp: *tolerance, AllocsPerOp: *allocTol, BytesPerOp: *bytesTol}
	regs := benchreport.Compare(rows, base, tol)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "bench-report: no case regressed more than %.0f%% vs %s\n", *tolerance*100, *baseline)
		return
	}
	fmt.Fprintf(os.Stderr, "bench-report: %d regression(s) vs %s:\n", len(regs), *baseline)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}
