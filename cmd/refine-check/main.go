// Command refine-check exercises the Abstraction Theorem (Thm 7): for each
// algorithm it exhaustively enumerates the observable behaviours of a small
// client program against the concrete replicated implementation and against
// the abstract machine of Sec 6, and verifies the contextual refinement
// Π ⊑φ (Γ, ⊲⊳) — every concrete behaviour also arises abstractly.
//
// Usage:
//
//	refine-check [-algo all] [-client "node t1 {...} node t2 {...}"]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/crdts/registry"
	"repro/internal/lang"
	"repro/internal/refine"
)

// defaultClients mirrors the per-datatype clients used in the test suite.
var defaultClients = map[string]string{
	"counter": `
		node t1 { inc(1); x := read(); }
		node t2 { dec(2); y := read(); }`,
	"register": `
		node t1 { write(1); x := read(); }
		node t2 { write(2); y := read(); }`,
	"g-set": `
		node t1 { add("a"); x := lookup("b"); }
		node t2 { add("b"); y := lookup("a"); }`,
	"set": `
		node t1 { add("a"); x := lookup("a"); }
		node t2 { remove("a"); y := lookup("a"); }`,
	"list": `
		node t1 { addAfter(sentinel, "a"); x := read(); }
		node t2 { u := read(); if ("a" in u) { addAfter("a", "b"); } y := read(); }`,
}

func clientFor(alg registry.Algorithm) (lang.Program, error) {
	name := alg.Spec.Name()
	if name == "aw-set" || name == "rw-set" {
		name = "set"
	}
	src, ok := defaultClients[name]
	if !ok {
		return lang.Program{}, fmt.Errorf("no default client for data type %q", name)
	}
	return lang.Parse(src)
}

func main() {
	var (
		algo   = flag.String("algo", "all", "algorithm name, or 'all'")
		client = flag.String("client", "", "client program source (default: per-datatype client)")
	)
	flag.Parse()
	algs := registry.All()
	if *algo != "all" {
		alg, ok := registry.ByName(*algo)
		if !ok {
			fmt.Fprintf(os.Stderr, "refine-check: unknown algorithm %q\n", *algo)
			os.Exit(2)
		}
		algs = []registry.Algorithm{alg}
	}
	failed := false
	for _, alg := range algs {
		var prog lang.Program
		var err error
		if *client != "" {
			prog, err = lang.Parse(*client)
		} else {
			prog, err = clientFor(alg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "refine-check: %v\n", err)
			os.Exit(2)
		}
		res, err := refine.Check(alg, prog, refine.Explorer{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "refine-check: %s: %v\n", alg.Name, err)
			os.Exit(1)
		}
		status := "Π ⊑φ (Γ,⊲⊳) holds"
		if !res.OK {
			status = fmt.Sprintf("REFINEMENT VIOLATED (%d uncovered behaviours)", len(res.Extra))
			failed = true
		}
		fmt.Printf("%-14s %3d concrete ⊆ %3d abstract behaviours: %s\n",
			alg.Name, res.ConcreteCount, res.AbstractCount, status)
		for _, extra := range res.Extra {
			fmt.Printf("    extra: %s\n", extra)
		}
	}
	if failed {
		os.Exit(1)
	}
}
