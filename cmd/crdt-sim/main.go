// Command crdt-sim runs randomized executions of a CRDT algorithm on a
// simulated replicated cluster and reports convergence: the strong eventual
// consistency that Lemma 5 derives from ACC, observed directly.
//
// Usage:
//
//	crdt-sim -algo rga -nodes 3 -steps 200 -seeds 20 [-drop 0.1] [-v]
//
// Chaos mode runs deterministic scripted executions under seeded fault
// plans — message loss (with retransmission), bounded duplication, reorder
// windows, payload corruption (the cluster ships canonically encoded bytes;
// a flipped bit is rejected by the decoder and retransmitted), transient
// partitions and node crash/recovery — and checks that the replicas still
// converge once the faults heal and delivery quiesces. Every run is
// replayable: the same flags always produce the same script, plan, trace
// and verdict, and the first seed is executed twice to prove it.
//
//	crdt-sim -chaos -algo rga -nodes 3 -ops 12 -seed 1 -seeds 10 [-loss 0.2] [-dup 0.3] [-delay 3] [-corrupt 0.3] [-snapshot-every 4] [-v]
//
// With -snapshot-every N the chaos clusters checkpoint the stable frontier
// every N replication events, truncate the broadcast log up to it, and serve
// fresh crash recoveries from the decoded snapshot instead of a full log
// replay.
//
// Socket mode replicates one object between real OS processes: each process
// is one node of a full mesh over unix or TCP sockets, shipping the same
// checksummed frames the simulator uses, decoded by the registry's codecs.
// All processes must be started with the same -algo/-ops/-seed/-addrs; each
// deterministically generates the shared script and plays only its own
// node's share:
//
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock -node 0 -algo rga -ops 20 -seed 7 &
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock -node 1 -algo rga -ops 20 -seed 7
//
// Both print the byte-identical canonical state. Write batching coalesces
// queued broadcasts into one wire write per flush: -batch-frames N holds up
// to N frames back, -batch-bytes B caps the pending container size, and
// -flush-every D bounds how long the first queued frame waits. Batching is
// pure wire plumbing — the canonical states still agree byte-for-byte, as
// the printed per-peer transport stats show:
//
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock -node 0 -batch-frames 8 -flush-every 5ms ...
//
// A socket mesh also supports late joiners with snapshot catch-up: early
// processes name the nodes that will arrive late (-late-peers) and keep their
// broadcast logs compacted (-snapshot-every N truncates up to the frontier
// every connected peer has acknowledged); a late process passes -catch-up and
// is served the stable checkpoint plus the retained log suffix instead of
// replaying the full history:
//
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock,/tmp/c.sock -node 0 -late-peers 2 -snapshot-every 4 -algo counter -ops 18 -seed 7 &
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock,/tmp/c.sock -node 1 -late-peers 2 -snapshot-every 4 -algo counter -ops 18 -seed 7 &
//	sleep 1
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock,/tmp/c.sock -node 2 -catch-up -algo counter -ops 18 -seed 7
//
// All three print the byte-identical canonical state, and the early nodes'
// snapshot stats show the log stayed bounded.
//
// With -objects N a socket process replicates N independent objects
// multiplexed over the same mesh: one socket pair per process pair carries
// every object's frames (object-scoped, coalescing into shared batches), and
// the handshake exchanges a manifest both sides validate. By default every
// object runs -algo; -mixed cycles the objects through different algorithms
// and additionally prints a product state reassembled at read time from the
// first two objects' independently replicated components. Late joiners
// catch up per object through the one shared socket pair:
//
//	crdt-sim -transport tcp -addrs h0:9000,h1:9001 -node 0 -objects 4 -mixed -ops 16 -seed 7 &
//	crdt-sim -transport tcp -addrs h0:9000,h1:9001 -node 1 -objects 4 -mixed -ops 16 -seed 7
//
// Each process prints one per-object state line (byte-identical across
// processes), a per-object transport-frame breakdown whose counters must sum
// exactly to the per-peer wire totals, and the product state.
//
// With -weights the shared endpoint schedules sends per object: each object
// gets its own send queue, drained into batch containers by deficit-weighted
// round-robin (an object of weight 8 gets up to 8× the frames of a weight-1
// object per scheduling round). -obj-max-delay gives named objects their own
// flush deadline: when it expires, only that object's queue goes to the wire
// while the others keep batching — a latency floor for quiet objects sharing
// the endpoint with chatty ones. Scheduling reorders sends across objects
// only, never within one, so convergence is untouched:
//
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock -node 0 -objects 4 -mixed -batch-frames 64 -weights 1:8,2:1 -obj-max-delay 2:5ms -ops 16 -seed 7 &
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock -node 1 -objects 4 -mixed -batch-frames 64 -weights 1:8,2:1 -obj-max-delay 2:5ms -ops 16 -seed 7
//
// Each process prints the scheduler's per-object ledger (frames queued and
// drained, cap- and deadline-attributed flushes, p99 enqueue→wire delay) and
// exits non-zero if the ledger does not balance against the wire totals.
//
// With -recv-workers N a socket process applies received frames on N
// parallel per-object shards with bounded queues instead of the interleaved
// pull loop: each object is pinned to one shard, so per-object delivery
// order (and with it causal hold-back, dedup and snapshot catch-up) is
// untouched while distinct objects apply concurrently, and a full shard
// queue stalls the reader instead of buffering without bound. The process
// prints the pipeline's per-shard ledger, which must balance against the
// per-peer wire totals:
//
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock -node 0 -objects 4 -mixed -recv-workers 2 -ops 16 -seed 7 &
//	crdt-sim -transport unix -addrs /tmp/a.sock,/tmp/b.sock -node 1 -objects 4 -mixed -recv-workers 2 -ops 16 -seed 7
//
// Chaos fault injection needs the deterministic in-memory transport and
// refuses to combine with sockets.
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/crdt"
	"repro/internal/crdts/registry"
	"repro/internal/model"
	"repro/internal/product"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	var (
		algo  = flag.String("algo", "rga", "algorithm: "+strings.Join(algoNames(), ", "))
		nodes = flag.Int("nodes", 3, "cluster size")
		steps = flag.Int("steps", 100, "scheduler steps per run")
		seeds = flag.Int("seeds", 10, "number of randomized runs")
		drop  = flag.Float64("drop", 0, "per-destination message drop probability (disables the final drain)")
		verb  = flag.Bool("v", false, "print the trace of the first run")

		chaos   = flag.Bool("chaos", false, "chaos mode: scripted runs under seeded fault plans")
		seed    = flag.Int64("seed", 1, "chaos mode: base seed (runs use seed..seed+seeds-1); socket mode: script seed")
		ops     = flag.Int("ops", 12, "chaos/socket mode: scripted operations per run")
		loss    = flag.Float64("loss", -1, "chaos mode: override plan link loss probability (-1 = from plan)")
		dup     = flag.Float64("dup", -1, "chaos mode: override plan link duplication probability (-1 = from plan)")
		delay   = flag.Int("delay", -1, "chaos mode: override plan reorder window in ticks (-1 = from plan)")
		corrupt = flag.Float64("corrupt", -1, "chaos mode: override plan payload-corruption probability (-1 = from plan)")
		snap    = flag.Int("snapshot-every", 0, "chaos mode: checkpoint the stable frontier every N replication events and truncate the broadcast log; socket transports: compact the peer's broadcast log every N applied frames (0 = off)")

		trans = flag.String("transport", "mem", "transport: mem (deterministic in-process simulation), unix or tcp (this process is one node of a socket mesh)")
		node  = flag.Int("node", 0, "socket transports: this process's node id (an index into -addrs)")
		addrs = flag.String("addrs", "", "socket transports: comma-separated full-mesh address table, one entry per node (unix: socket paths, tcp: host:port)")

		latePeers = flag.String("late-peers", "", "socket transports: comma-separated node ids that will join late; this peer admits them anytime and serves snapshot catch-up")
		catchUp   = flag.Bool("catch-up", false, "socket transports: this process joins an already-running mesh late and catches up via the snapshot protocol before playing its share")

		batchFrames = flag.Int("batch-frames", 0, "socket transports: coalesce up to N queued broadcasts into one wire write (0 = unbatched)")
		batchBytes  = flag.Int("batch-bytes", 0, "socket transports: flush the pending batch once it reaches B bytes of nested frames (0 = no byte cap)")
		flushEvery  = flag.Duration("flush-every", 0, "socket transports: flush the pending batch at most this long after its first frame queued (0 = no delay timer)")

		weights   = flag.String("weights", "", "socket transports: per-object send-queue weights as obj:w pairs (e.g. 1:8,2:1); queues drain into shared batches by deficit-weighted round-robin")
		objDelays = flag.String("obj-max-delay", "", "socket transports: per-object flush-delay overrides as obj:dur pairs (e.g. 2:5ms); an override flushes only that object's queue, even while the others keep batching")

		objects = flag.Int("objects", 1, "socket transports: replicate N independent objects multiplexed over the one socket mesh (manifest object ids 1..N)")
		mixed   = flag.Bool("mixed", false, "socket transports: with -objects, cycle the objects through different algorithms and print a product reassembled from the first two")

		recvWorkers = flag.Int("recv-workers", 0, "socket transports: apply received frames on N parallel per-object shards with bounded queues (0 = legacy pull loop)")
	)
	flag.Parse()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "crdt-sim: "+format+"\n", args...)
		os.Exit(2)
	}
	alg, ok := registry.ByName(*algo)
	if !ok {
		fail("unknown algorithm %q (have: %s)", *algo, strings.Join(algoNames(), ", "))
	}
	if *snap < 0 {
		fail("-snapshot-every must be positive (got %d)", *snap)
	}
	if *batchFrames < 0 || *batchBytes < 0 || *flushEvery < 0 {
		fail("-batch-frames, -batch-bytes and -flush-every must be non-negative")
	}
	policy := transport.BatchPolicy{MaxFrames: *batchFrames, MaxBytes: *batchBytes, MaxDelay: *flushEvery}
	weightTab, err := parseWeights(*weights)
	if err != nil {
		fail("%v", err)
	}
	delayTab, err := parseObjDelays(*objDelays)
	if err != nil {
		fail("%v", err)
	}
	schedPol := transport.SchedPolicy{Weights: weightTab, MaxDelay: delayTab}
	switch *trans {
	case "mem":
		if *addrs != "" {
			fail("-addrs only applies to socket transports: pass -transport unix or -transport tcp")
		}
		if *batchFrames != 0 || *batchBytes != 0 || *flushEvery != 0 {
			fail("write batching applies to socket transports: pass -transport unix or -transport tcp")
		}
		if *weights != "" || *objDelays != "" {
			fail("-weights and -obj-max-delay apply to socket transports: pass -transport unix or -transport tcp")
		}
		if *latePeers != "" || *catchUp {
			fail("-late-peers and -catch-up apply to socket transports: pass -transport unix or -transport tcp")
		}
		if *objects != 1 || *mixed {
			fail("-objects and -mixed apply to socket transports: pass -transport unix or -transport tcp")
		}
		if *recvWorkers != 0 {
			fail("-recv-workers applies to socket transports: pass -transport unix or -transport tcp")
		}
	case "unix", "tcp":
		if *chaos {
			fail("chaos fault injection needs the deterministic in-memory transport: drop -chaos or use -transport mem")
		}
		if *addrs == "" {
			fail("-transport %s needs -addrs with one %s address per node", *trans, *trans)
		}
		if *catchUp && *latePeers != "" {
			fail("-catch-up and -late-peers are mutually exclusive: a late joiner cannot admit further late peers")
		}
		late, err := parseLatePeers(*latePeers)
		if err != nil {
			fail("%v", err)
		}
		if *objects < 1 {
			fail("-objects must be at least 1 (got %d)", *objects)
		}
		if *mixed && *objects < 2 {
			fail("-mixed needs -objects of at least 2 to mix algorithms")
		}
		if *recvWorkers < 0 {
			fail("-recv-workers must be non-negative (got %d)", *recvWorkers)
		}
		if *objects > 1 {
			os.Exit(runPeerMulti(alg, *trans, *node, strings.Split(*addrs, ","), *ops, *seed, policy, schedPol, *snap, late, *catchUp, *objects, *mixed, *recvWorkers))
		}
		os.Exit(runPeer(alg, *trans, *node, strings.Split(*addrs, ","), *ops, *seed, policy, schedPol, *snap, late, *catchUp, *recvWorkers))
	default:
		fail("unknown transport %q (have: mem, unix, tcp)", *trans)
	}
	if *snap > 0 && !*chaos {
		fail("-snapshot-every requires -chaos (snapshots checkpoint the chaos cluster's broadcast log)")
	}
	if *chaos {
		os.Exit(runChaos(alg, *nodes, *ops, *seed, *seeds, *loss, *dup, *delay, *corrupt, *snap, *verb))
	}
	os.Exit(runRandom(alg, *nodes, *steps, *seeds, *drop, *verb))
}

// parseLatePeers turns the -late-peers flag value into node ids.
func parseLatePeers(s string) ([]model.NodeID, error) {
	if s == "" {
		return nil, nil
	}
	var out []model.NodeID
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-late-peers entry %q is not a node id", part)
		}
		out = append(out, model.NodeID(n))
	}
	return out, nil
}

// parseWeights turns the -weights flag value ("obj:w,obj:w") into the
// scheduler's per-object weight table.
func parseWeights(s string) (map[transport.ObjID]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[transport.ObjID]int{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("-weights entry %q is not an obj:weight pair", part)
		}
		obj, err := strconv.Atoi(kv[0])
		if err != nil || obj < 0 {
			return nil, fmt.Errorf("-weights entry %q: %q is not an object id", part, kv[0])
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-weights entry %q: weight must be a positive integer", part)
		}
		out[transport.ObjID(obj)] = w
	}
	return out, nil
}

// parseObjDelays turns the -obj-max-delay flag value ("obj:dur,obj:dur") into
// the scheduler's per-object flush-delay override table.
func parseObjDelays(s string) (map[transport.ObjID]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	out := map[transport.ObjID]time.Duration{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("-obj-max-delay entry %q is not an obj:duration pair", part)
		}
		obj, err := strconv.Atoi(kv[0])
		if err != nil || obj < 0 {
			return nil, fmt.Errorf("-obj-max-delay entry %q: %q is not an object id", part, kv[0])
		}
		d, err := time.ParseDuration(kv[1])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("-obj-max-delay entry %q: %q is not a positive duration", part, kv[1])
		}
		out[transport.ObjID(obj)] = d
	}
	return out, nil
}

// schedStatsLine renders the scheduler's per-object ledger for printing, in
// ascending object-id order.
func schedStatsLine(ss transport.SchedStats) string {
	ids := make([]int, 0, len(ss.Objects))
	for id := range ss.Objects {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		so := ss.Objects[transport.ObjID(id)]
		parts = append(parts, fmt.Sprintf("%d:%d/%d cap=%d deadline=%d p99=%s",
			id, so.Queued, so.Drained, so.CapFlushes, so.DeadlineFlushes, so.DelayQuantile(0.99)))
	}
	return strings.Join(parts, " ")
}

// recvStatsLine renders the receive pipeline's per-shard ledger for printing:
// dispatched/applied frames and the queue-depth high-water mark per shard.
func recvStatsLine(rs transport.RecvStats) string {
	parts := make([]string, len(rs.Shards))
	for i, sh := range rs.Shards {
		parts[i] = fmt.Sprintf("%d:%d/%d q<=%d", i, sh.Dispatched, sh.Applied, sh.MaxQueue)
	}
	return strings.Join(parts, " ")
}

// finishReceiver stops a pipelined node's receive side after quiescence: it
// closes the endpoint (nothing further can arrive once every peer is done and
// drained), waits for the shards to finish, and prints the pipeline ledger,
// which must balance against the per-peer wire totals — every received frame
// dispatched to exactly one shard and applied.
func finishReceiver(node int, n *transport.Node, st *transport.Stream) int {
	r := n.Receiver()
	st.Close()
	select {
	case <-r.Done():
	case <-time.After(10 * time.Second):
		fmt.Fprintf(os.Stderr, "crdt-sim: node %d: receive pipeline did not drain after close\n", node)
		return 1
	}
	if err := r.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "crdt-sim: node %d: receive pipeline: %v\n", node, err)
		return 1
	}
	rs := r.Stats()
	if err := rs.Balance(st.Stats().TotalRecv().Frames); err != nil {
		fmt.Fprintf(os.Stderr, "crdt-sim: node %d: %v\n", node, err)
		return 1
	}
	fmt.Printf("node %d: receive pipeline workers=%d queue=%d shard frames (dispatched/applied): %s\n",
		node, rs.Workers, rs.QueueFrames, recvStatsLine(rs))
	return 0
}

// runPeer runs one node of a socket mesh: it generates the shared script
// from the seed, plays its own share over the stream transport (batching
// writes per the policy), and prints the canonical state every process must
// agree on byte-for-byte plus the transport's batching stats. With late
// joiners declared (or as a -catch-up joiner itself) it runs the snapshot
// protocol: early peers serve checkpoint-plus-suffix responses and compact
// their logs every snapEvery applied frames; the joiner installs the first
// response before playing its share. With recvWorkers > 0 the receive side
// runs as the parallel pipeline (the single object pins to one shard, so
// delivery order is unchanged) instead of the interleaved Step calls.
func runPeer(alg registry.Algorithm, network string, node int, addrList []string, ops int, seed int64, policy transport.BatchPolicy, schedPol transport.SchedPolicy, snapEvery int, late []model.NodeID, catchUp bool, recvWorkers int) int {
	if len(addrList) < 2 {
		fmt.Fprintf(os.Stderr, "crdt-sim: -addrs lists %d address(es); a mesh needs at least 2\n", len(addrList))
		return 2
	}
	if node < 0 || node >= len(addrList) {
		fmt.Fprintf(os.Stderr, "crdt-sim: -node %d is not an index into the %d-entry -addrs table\n", node, len(addrList))
		return 2
	}
	full := make([]string, len(addrList))
	for i, a := range addrList {
		full[i] = network + ":" + strings.TrimSpace(a)
	}
	script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), len(addrList), ops, seed, alg.NeedsCausal)
	sopts := []transport.StreamOption{transport.WithRecvTimeout(30 * time.Second), transport.WithBatching(policy)}
	if len(schedPol.Weights) > 0 || len(schedPol.MaxDelay) > 0 {
		sopts = append(sopts, transport.WithScheduler(schedPol))
	}
	if recvWorkers > 0 {
		sopts = append(sopts, transport.WithReceiver(transport.RecvPolicy{Workers: recvWorkers}))
	}
	switch {
	case catchUp:
		sopts = append(sopts, transport.AsLateJoiner())
	case len(late) > 0:
		sopts = append(sopts, transport.WithLateJoiners(late...))
	}
	st, err := transport.Listen(model.NodeID(node), full, sopts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crdt-sim: node %d: %v\n", node, err)
		return 1
	}
	defer st.Close()
	var popts []transport.PeerOption
	if !catchUp && (snapEvery > 0 || len(late) > 0) {
		popts = append(popts, transport.WithSnapshotPolicy(transport.SnapshotPolicy{Every: snapEvery}))
	}
	if catchUp {
		popts = append(popts, transport.WithCatchUp(alg.DecodeState))
	}
	// Pipeline mode wraps the single object in a Node demux: the object's
	// frames carry the default object id 0, and StartReceiver owns the
	// receive side the rest of the run.
	var n *transport.Node
	var p *transport.Peer
	if recvWorkers > 0 {
		n, err = transport.NewNode(st, nil)
		if err == nil {
			p, err = n.Register(0, alg.New(), alg.DecodeEffector, alg.NeedsCausal, popts...)
		}
		if err == nil {
			_, err = n.StartReceiver()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "crdt-sim: node %d: %v\n", node, err)
			return 1
		}
	} else {
		p = transport.NewPeer(alg.New(), alg.DecodeEffector, st, alg.NeedsCausal, popts...)
	}
	if catchUp {
		if err := p.CatchUp(); err != nil {
			fmt.Fprintf(os.Stderr, "crdt-sim: node %d: %v\n", node, err)
			return 1
		}
		await := p.AwaitCatchUp
		if n != nil {
			await = n.AwaitCatchUp
		}
		if err := await(60 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "crdt-sim: node %d: catch-up: %v\n", node, err)
			return 1
		}
	}
	for _, so := range script {
		if so.Node != model.NodeID(node) {
			continue
		}
		if _, err := p.Invoke(so.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
			fmt.Fprintf(os.Stderr, "crdt-sim: node %d: invoke %v: %v\n", node, so.Op, err)
			return 1
		}
		if n == nil {
			// Interleave receive progress so peers observe each other
			// mid-script (the pipeline applies continuously on its own).
			if _, err := p.Step(false); err != nil {
				fmt.Fprintf(os.Stderr, "crdt-sim: node %d: %v\n", node, err)
				return 1
			}
		}
	}
	if err := p.Done(); err != nil {
		fmt.Fprintf(os.Stderr, "crdt-sim: node %d: %v\n", node, err)
		return 1
	}
	quiesce := p.RunToQuiescence
	if n != nil {
		quiesce = n.RunToQuiescence
	}
	if err := quiesce(60 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "crdt-sim: node %d: %v\n", node, err)
		return 1
	}
	if n != nil {
		if code := finishReceiver(node, n, st); code != 0 {
			return code
		}
	}
	fmt.Printf("node %d: quiescent over %s (issued %d, applied %d remote), φ(state) = %s\n",
		node, network, p.Issued(), p.Applied(), alg.Abs(p.State()))
	if ts, ok := p.TransportStats(); ok {
		sent, recv := ts.TotalSent(), ts.TotalRecv()
		fmt.Printf("node %d: transport sent %d frames in %d batches (%d B), received %d frames in %d batches (%d B), flushes frames=%d bytes=%d delay=%d explicit=%d close=%d\n",
			node, sent.Frames, sent.Batches, sent.Bytes, recv.Frames, recv.Batches, recv.Bytes,
			ts.Flushes.Frames, ts.Flushes.Bytes, ts.Flushes.Delay, ts.Flushes.Explicit, ts.Flushes.Close)
		if ts.Sched.Enabled {
			if err := ts.SchedBalance(); err != nil {
				fmt.Fprintf(os.Stderr, "crdt-sim: node %d: %v\n", node, err)
				return 1
			}
			fmt.Printf("node %d: scheduler queued/drained: %s\n", node, schedStatsLine(ts.Sched))
		}
	}
	if catchUp || snapEvery > 0 || len(late) > 0 {
		ss := p.SnapshotStats()
		fmt.Printf("node %d: snapshots: checkpoints=%d truncated=%d retained=%d served=%d installed=%t covered=%d suffix=%d fellback=%t\n",
			node, ss.Checkpoints, ss.LogTruncated, ss.LogRetained, ss.Served,
			ss.Installed, ss.InstallCovered, ss.InstallSuffix, ss.FellBack)
	}
	fmt.Printf("node %d: canonical state %s\n", node, hex.EncodeToString(p.CanonicalState()))
	return 0
}

// mixedKinds is the algorithm rotation -mixed assigns to objects 1..N.
var mixedKinds = []string{"counter", "g-set", "lww-register", "rga"}

// multiManifest builds the shared manifest for -objects N: object ids 1..N
// (nonzero on purpose — the ids travel in every frame), each declaring the
// algorithm the processes must agree on.
func multiManifest(alg registry.Algorithm, objects int, mixed bool) transport.Manifest {
	man := make(transport.Manifest, objects)
	for i := 0; i < objects; i++ {
		kind := alg.Name
		if mixed {
			kind = mixedKinds[i%len(mixedKinds)]
		}
		man[i] = transport.ObjectSpec{ID: transport.ObjID(i + 1), Name: fmt.Sprintf("obj%d", i+1), Kind: kind}
	}
	return man
}

// runPeerMulti runs one node of a multi-object socket mesh: N objects
// multiplexed over one transport.Node demux on one shared endpoint, each
// replicating its own deterministically generated script. Every process must
// be started with the same -algo/-objects/-mixed/-ops/-seed/-addrs so the
// handshake manifests agree. Prints one state line per object (byte-identical
// across processes), the per-object transport-frame breakdown (whose sums
// must balance the per-peer wire totals — checked here, not just printed),
// and with -mixed a product state reassembled from the first two objects.
func runPeerMulti(alg registry.Algorithm, network string, node int, addrList []string, ops int, seed int64, policy transport.BatchPolicy, schedPol transport.SchedPolicy, snapEvery int, late []model.NodeID, catchUp bool, objects int, mixed bool, recvWorkers int) int {
	if len(addrList) < 2 {
		fmt.Fprintf(os.Stderr, "crdt-sim: -addrs lists %d address(es); a mesh needs at least 2\n", len(addrList))
		return 2
	}
	if node < 0 || node >= len(addrList) {
		fmt.Fprintf(os.Stderr, "crdt-sim: -node %d is not an index into the %d-entry -addrs table\n", node, len(addrList))
		return 2
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "crdt-sim: node %d: "+format+"\n", append([]any{node}, args...)...)
		return 1
	}
	full := make([]string, len(addrList))
	for i, a := range addrList {
		full[i] = network + ":" + strings.TrimSpace(a)
	}
	man := multiManifest(alg, objects, mixed)
	algs := make([]registry.Algorithm, objects)
	scripts := make([]sim.Script, objects)
	for oi, spec := range man {
		a, ok := registry.ByName(spec.Kind)
		if !ok {
			return fail("object %d: unknown algorithm %q", spec.ID, spec.Kind)
		}
		algs[oi] = a
		scripts[oi] = sim.GenScript(a.New(), a.Abs, sim.GenFunc(a.GenOp), len(addrList), ops, seed+int64(oi), a.NeedsCausal)
	}
	sopts := []transport.StreamOption{
		transport.WithRecvTimeout(30 * time.Second),
		transport.WithBatching(policy),
		transport.WithManifest(man),
	}
	if len(schedPol.Weights) > 0 || len(schedPol.MaxDelay) > 0 {
		sopts = append(sopts, transport.WithScheduler(schedPol))
	}
	if recvWorkers > 0 {
		sopts = append(sopts, transport.WithReceiver(transport.RecvPolicy{Workers: recvWorkers}))
	}
	switch {
	case catchUp:
		sopts = append(sopts, transport.AsLateJoiner())
	case len(late) > 0:
		sopts = append(sopts, transport.WithLateJoiners(late...))
	}
	st, err := transport.Listen(model.NodeID(node), full, sopts...)
	if err != nil {
		return fail("%v", err)
	}
	defer st.Close()
	n, err := transport.NewNode(st, man)
	if err != nil {
		return fail("%v", err)
	}
	for oi, spec := range man {
		var popts []transport.PeerOption
		if !catchUp && (snapEvery > 0 || len(late) > 0) {
			popts = append(popts, transport.WithSnapshotPolicy(transport.SnapshotPolicy{Every: snapEvery}))
		}
		if catchUp {
			popts = append(popts, transport.WithCatchUp(algs[oi].DecodeState))
		}
		if _, err := n.Register(spec.ID, algs[oi].New(), algs[oi].DecodeEffector, algs[oi].NeedsCausal, popts...); err != nil {
			return fail("%v", err)
		}
	}
	if recvWorkers > 0 {
		if _, err := n.StartReceiver(); err != nil {
			return fail("%v", err)
		}
	}
	if catchUp {
		if err := n.CatchUp(); err != nil {
			return fail("%v", err)
		}
		if err := n.AwaitCatchUp(60 * time.Second); err != nil {
			return fail("catch-up: %v", err)
		}
	}
	// Interleave the objects' shares so their frames coalesce into the same
	// batches: operation k of every object before operation k+1 of any.
	for so := 0; so < ops; so++ {
		for oi, spec := range man {
			if so >= len(scripts[oi]) {
				continue
			}
			sop := scripts[oi][so]
			if sop.Node != model.NodeID(node) {
				continue
			}
			p, _ := n.Peer(spec.ID)
			if _, err := p.Invoke(sop.Op); err != nil && !errors.Is(err, crdt.ErrAssume) {
				return fail("object %d: invoke %v: %v", spec.ID, sop.Op, err)
			}
			if recvWorkers == 0 {
				if _, err := n.Step(false); err != nil {
					return fail("%v", err)
				}
			}
		}
	}
	for _, obj := range n.Objects() {
		p, _ := n.Peer(obj)
		if err := p.Done(); err != nil {
			return fail("%v", err)
		}
	}
	if err := n.RunToQuiescence(60 * time.Second); err != nil {
		return fail("%v", err)
	}
	if recvWorkers > 0 {
		if code := finishReceiver(node, n, st); code != 0 {
			return code
		}
	}
	for oi, spec := range man {
		p, _ := n.Peer(spec.ID)
		fmt.Printf("node %d: obj %d (%s) quiescent over %s (issued %d, applied %d remote), φ(state) = %s\n",
			node, spec.ID, spec.Kind, network, p.Issued(), p.Applied(), algs[oi].Abs(p.State()))
		if catchUp || snapEvery > 0 || len(late) > 0 {
			ss := p.SnapshotStats()
			fmt.Printf("node %d: obj %d snapshots: checkpoints=%d truncated=%d retained=%d served=%d installed=%t covered=%d suffix=%d fellback=%t\n",
				node, spec.ID, ss.Checkpoints, ss.LogTruncated, ss.LogRetained, ss.Served,
				ss.Installed, ss.InstallCovered, ss.InstallSuffix, ss.FellBack)
		}
		fmt.Printf("node %d: obj %d canonical state %s\n", node, spec.ID, hex.EncodeToString(p.CanonicalState()))
	}
	ts := st.Stats()
	sent, recv := ts.TotalSent(), ts.TotalRecv()
	fmt.Printf("node %d: transport sent %d frames in %d batches (%d B), received %d frames in %d batches (%d B) over %d connection(s)\n",
		node, sent.Frames, sent.Batches, sent.Bytes, recv.Frames, recv.Batches, recv.Bytes, len(st.ConnectedPeers()))
	var sentObj, recvObj int
	parts := make([]string, 0, len(man))
	for _, spec := range man {
		io := ts.Objects[spec.ID]
		sentObj += io.SentFrames
		recvObj += io.RecvFrames
		parts = append(parts, fmt.Sprintf("%d:%d/%d", spec.ID, io.SentFrames, io.RecvFrames))
	}
	fmt.Printf("node %d: per-object frames (sent/recv): %s\n", node, strings.Join(parts, " "))
	if sentObj != sent.Frames || recvObj != recv.Frames {
		return fail("per-object frame counters (sent %d, recv %d) do not sum to the per-peer totals (sent %d, recv %d)",
			sentObj, recvObj, sent.Frames, recv.Frames)
	}
	if ts.Sched.Enabled {
		if err := ts.SchedBalance(); err != nil {
			return fail("%v", err)
		}
		fmt.Printf("node %d: scheduler queued/drained: %s\n", node, schedStatsLine(ts.Sched))
	}
	if mixed {
		p1, _ := n.Peer(man[0].ID)
		p2, _ := n.Peer(man[1].ID)
		prod := product.State{Parts: []crdt.State{p1.State(), p2.State()}}
		fmt.Printf("node %d: product(%s×%s) canonical state %s\n",
			node, man[0].Kind, man[1].Kind, hex.EncodeToString(prod.AppendBinary(nil)))
	}
	return 0
}

// runChaos executes chaos mode and returns the process exit code.
func runChaos(alg registry.Algorithm, nodes, ops int, base int64, seeds int, loss, dup float64, delay int, corrupt float64, snapEvery int, verb bool) int {
	fmt.Printf("chaos: algorithm %s (spec %s", alg.Name, alg.Spec.Name())
	if alg.NeedsCausal {
		fmt.Printf(", causal delivery")
	}
	fmt.Printf("), %d nodes, %d ops/script, seeds %d..%d", nodes, ops, base, base+int64(seeds)-1)
	if snapEvery > 0 {
		fmt.Printf(", snapshots every %d events", snapEvery)
	}
	fmt.Println()

	bad := 0
	for s := base; s < base+int64(seeds); s++ {
		script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, s, alg.NeedsCausal)
		plan := sim.GenFaultPlan(s, nodes, 2*ops)
		if loss >= 0 {
			plan.Link.Loss = loss
		}
		if dup >= 0 {
			plan.Link.Dup = dup
			if plan.Link.MaxDup == 0 {
				plan.Link.MaxDup = 1
			}
		}
		if delay >= 0 {
			plan.Link.DelayMax = delay
		}
		if corrupt >= 0 {
			plan.Link.Corrupt = corrupt
		}
		run := func() (*sim.ChaosReport, error) {
			w := sim.Chaos{
				Object: alg.New(), Abs: alg.Abs, Script: script, Plan: plan,
				Nodes: nodes, Seed: s, Causal: alg.NeedsCausal,
				Decode: alg.DecodeEffector,
			}
			if snapEvery > 0 {
				w.SnapshotEvery = snapEvery
				w.DecodeState = alg.DecodeState
			}
			return w.Run()
		}
		rep, err := run()
		if err != nil {
			fmt.Printf("seed %4d: FAILED: %v (plan %s)\n", s, err, plan)
			bad++
			continue
		}
		if verb && s == base {
			fmt.Printf("plan: %s\n", plan)
			fmt.Println(trace.Render(rep.Trace))
			for _, n := range rep.Cluster.RecoveryNotes() {
				fmt.Printf("  %s\n", n)
			}
		}
		if err := rep.Trace.CheckWellFormed(); err != nil {
			fmt.Printf("seed %4d: malformed trace: %v\n", s, err)
			bad++
			continue
		}
		abs, converged := rep.Cluster.Converged(alg.Abs)
		if !converged {
			notes := make([]fmt.Stringer, 0, len(rep.Cluster.RecoveryNotes()))
			for _, n := range rep.Cluster.RecoveryNotes() {
				notes = append(notes, n)
			}
			fmt.Printf("seed %4d: DIVERGED after faults healed (plan %s)\n%s\n",
				s, plan, core.DivergenceReport(rep.Trace, alg.New().Init(), alg.Abs, notes...))
			bad++
			continue
		}
		if err := core.CheckConvergenceFrom(rep.Trace, alg.New().Init(), alg.Abs); err != nil {
			fmt.Printf("seed %4d: CvT VIOLATED: %v\n", s, err)
			bad++
			continue
		}
		status := ""
		if s == base {
			// Prove the reproduction recipe: the same (script, seed, plan)
			// must replay byte-for-byte.
			rep2, err := run()
			switch {
			case err != nil:
				status = "  [replay FAILED: " + err.Error() + "]"
				bad++
			case rep2.Trace.String() != rep.Trace.String() || rep2.Stats != rep.Stats || rep2.Ticks != rep.Ticks:
				status = "  [replay NOT reproducible]"
				bad++
			default:
				status = "  [replay identical]"
			}
		}
		fmt.Printf("seed %4d: %3d events, %3d ticks, converged to %s  (%s)%s\n",
			s, len(rep.Trace), rep.Ticks, abs, rep.Stats, status)
	}
	fmt.Printf("\n%d/%d chaos runs consistent\n", seeds-bad, seeds)
	if bad > 0 {
		return 1
	}
	return 0
}

// runRandom is the original randomized-workload mode; it returns the
// process exit code.
func runRandom(alg registry.Algorithm, nodes, steps, seeds int, drop float64, verb bool) int {
	fmt.Printf("algorithm %s (spec %s", alg.Name, alg.Spec.Name())
	if alg.NeedsCausal {
		fmt.Printf(", causal delivery")
	}
	fmt.Printf("), %d nodes, %d steps, %d runs\n", nodes, steps, seeds)

	converged, diverged := 0, 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		w := sim.Workload{
			Object:     alg.New(),
			Abs:        alg.Abs,
			Gen:        sim.GenFunc(alg.GenOp),
			Nodes:      nodes,
			Steps:      steps,
			Causal:     alg.NeedsCausal,
			DropProb:   drop,
			FinalDrain: drop == 0,
		}
		c := w.Run(seed)
		tr := c.Trace()
		if err := tr.CheckWellFormed(); err != nil {
			fmt.Fprintf(os.Stderr, "crdt-sim: seed %d: malformed trace: %v\n", seed, err)
			return 1
		}
		if verb && seed == 1 {
			fmt.Println(trace.Render(tr))
			fmt.Print(trace.Summarize(tr))
		}
		if err := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); err != nil {
			fmt.Printf("seed %4d: CvT VIOLATED: %v\n", seed, err)
			diverged++
			continue
		}
		if drop == 0 {
			abs, ok := c.Converged(alg.Abs)
			if !ok {
				fmt.Printf("seed %4d: replicas diverged after full drain\n", seed)
				diverged++
				continue
			}
			fmt.Printf("seed %4d: %3d events, converged to %s\n", seed, len(tr), abs)
		} else {
			fmt.Printf("seed %4d: %3d events, CvT holds (%d messages dropped or in flight)\n",
				seed, len(tr), c.Pending())
		}
		converged++
	}
	fmt.Printf("\n%d/%d runs consistent\n", converged, seeds)
	if diverged > 0 {
		return 1
	}
	return 0
}

func algoNames() []string {
	var out []string
	for _, a := range registry.All() {
		out = append(out, a.Name)
	}
	return out
}
