// Command crdt-sim runs randomized executions of a CRDT algorithm on a
// simulated replicated cluster and reports convergence: the strong eventual
// consistency that Lemma 5 derives from ACC, observed directly.
//
// Usage:
//
//	crdt-sim -algo rga -nodes 3 -steps 200 -seeds 20 [-drop 0.1] [-v]
//
// Chaos mode runs deterministic scripted executions under seeded fault
// plans — message loss (with retransmission), bounded duplication, reorder
// windows, payload corruption (the cluster ships canonically encoded bytes;
// a flipped bit is rejected by the decoder and retransmitted), transient
// partitions and node crash/recovery — and checks that the replicas still
// converge once the faults heal and delivery quiesces. Every run is
// replayable: the same flags always produce the same script, plan, trace
// and verdict, and the first seed is executed twice to prove it.
//
//	crdt-sim -chaos -algo rga -nodes 3 -ops 12 -seed 1 -seeds 10 [-loss 0.2] [-dup 0.3] [-delay 3] [-corrupt 0.3] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/crdts/registry"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		algo  = flag.String("algo", "rga", "algorithm: "+strings.Join(algoNames(), ", "))
		nodes = flag.Int("nodes", 3, "cluster size")
		steps = flag.Int("steps", 100, "scheduler steps per run")
		seeds = flag.Int("seeds", 10, "number of randomized runs")
		drop  = flag.Float64("drop", 0, "per-destination message drop probability (disables the final drain)")
		verb  = flag.Bool("v", false, "print the trace of the first run")

		chaos   = flag.Bool("chaos", false, "chaos mode: scripted runs under seeded fault plans")
		seed    = flag.Int64("seed", 1, "chaos mode: base seed (runs use seed..seed+seeds-1)")
		ops     = flag.Int("ops", 12, "chaos mode: scripted operations per run")
		loss    = flag.Float64("loss", -1, "chaos mode: override plan link loss probability (-1 = from plan)")
		dup     = flag.Float64("dup", -1, "chaos mode: override plan link duplication probability (-1 = from plan)")
		delay   = flag.Int("delay", -1, "chaos mode: override plan reorder window in ticks (-1 = from plan)")
		corrupt = flag.Float64("corrupt", -1, "chaos mode: override plan payload-corruption probability (-1 = from plan)")
	)
	flag.Parse()
	alg, ok := registry.ByName(*algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "crdt-sim: unknown algorithm %q (have: %s)\n", *algo, strings.Join(algoNames(), ", "))
		os.Exit(2)
	}
	if *chaos {
		os.Exit(runChaos(alg, *nodes, *ops, *seed, *seeds, *loss, *dup, *delay, *corrupt, *verb))
	}
	os.Exit(runRandom(alg, *nodes, *steps, *seeds, *drop, *verb))
}

// runChaos executes chaos mode and returns the process exit code.
func runChaos(alg registry.Algorithm, nodes, ops int, base int64, seeds int, loss, dup float64, delay int, corrupt float64, verb bool) int {
	fmt.Printf("chaos: algorithm %s (spec %s", alg.Name, alg.Spec.Name())
	if alg.NeedsCausal {
		fmt.Printf(", causal delivery")
	}
	fmt.Printf("), %d nodes, %d ops/script, seeds %d..%d\n", nodes, ops, base, base+int64(seeds)-1)

	bad := 0
	for s := base; s < base+int64(seeds); s++ {
		script := sim.GenScript(alg.New(), alg.Abs, sim.GenFunc(alg.GenOp), nodes, ops, s, alg.NeedsCausal)
		plan := sim.GenFaultPlan(s, nodes, 2*ops)
		if loss >= 0 {
			plan.Link.Loss = loss
		}
		if dup >= 0 {
			plan.Link.Dup = dup
			if plan.Link.MaxDup == 0 {
				plan.Link.MaxDup = 1
			}
		}
		if delay >= 0 {
			plan.Link.DelayMax = delay
		}
		if corrupt >= 0 {
			plan.Link.Corrupt = corrupt
		}
		run := func() (*sim.ChaosReport, error) {
			return sim.Chaos{
				Object: alg.New(), Abs: alg.Abs, Script: script, Plan: plan,
				Nodes: nodes, Seed: s, Causal: alg.NeedsCausal,
				Decode: alg.DecodeEffector,
			}.Run()
		}
		rep, err := run()
		if err != nil {
			fmt.Printf("seed %4d: FAILED: %v (plan %s)\n", s, err, plan)
			bad++
			continue
		}
		if verb && s == base {
			fmt.Printf("plan: %s\n", plan)
			fmt.Println(trace.Render(rep.Trace))
		}
		if err := rep.Trace.CheckWellFormed(); err != nil {
			fmt.Printf("seed %4d: malformed trace: %v\n", s, err)
			bad++
			continue
		}
		abs, converged := rep.Cluster.Converged(alg.Abs)
		if !converged {
			fmt.Printf("seed %4d: DIVERGED after faults healed (plan %s)\n%s\n",
				s, plan, core.DivergenceReport(rep.Trace, alg.New().Init(), alg.Abs))
			bad++
			continue
		}
		if err := core.CheckConvergenceFrom(rep.Trace, alg.New().Init(), alg.Abs); err != nil {
			fmt.Printf("seed %4d: CvT VIOLATED: %v\n", s, err)
			bad++
			continue
		}
		status := ""
		if s == base {
			// Prove the reproduction recipe: the same (script, seed, plan)
			// must replay byte-for-byte.
			rep2, err := run()
			switch {
			case err != nil:
				status = "  [replay FAILED: " + err.Error() + "]"
				bad++
			case rep2.Trace.String() != rep.Trace.String() || rep2.Stats != rep.Stats || rep2.Ticks != rep.Ticks:
				status = "  [replay NOT reproducible]"
				bad++
			default:
				status = "  [replay identical]"
			}
		}
		fmt.Printf("seed %4d: %3d events, %3d ticks, converged to %s  (%s)%s\n",
			s, len(rep.Trace), rep.Ticks, abs, rep.Stats, status)
	}
	fmt.Printf("\n%d/%d chaos runs consistent\n", seeds-bad, seeds)
	if bad > 0 {
		return 1
	}
	return 0
}

// runRandom is the original randomized-workload mode; it returns the
// process exit code.
func runRandom(alg registry.Algorithm, nodes, steps, seeds int, drop float64, verb bool) int {
	fmt.Printf("algorithm %s (spec %s", alg.Name, alg.Spec.Name())
	if alg.NeedsCausal {
		fmt.Printf(", causal delivery")
	}
	fmt.Printf("), %d nodes, %d steps, %d runs\n", nodes, steps, seeds)

	converged, diverged := 0, 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		w := sim.Workload{
			Object:     alg.New(),
			Abs:        alg.Abs,
			Gen:        sim.GenFunc(alg.GenOp),
			Nodes:      nodes,
			Steps:      steps,
			Causal:     alg.NeedsCausal,
			DropProb:   drop,
			FinalDrain: drop == 0,
		}
		c := w.Run(seed)
		tr := c.Trace()
		if err := tr.CheckWellFormed(); err != nil {
			fmt.Fprintf(os.Stderr, "crdt-sim: seed %d: malformed trace: %v\n", seed, err)
			return 1
		}
		if verb && seed == 1 {
			fmt.Println(trace.Render(tr))
			fmt.Print(trace.Summarize(tr))
		}
		if err := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); err != nil {
			fmt.Printf("seed %4d: CvT VIOLATED: %v\n", seed, err)
			diverged++
			continue
		}
		if drop == 0 {
			abs, ok := c.Converged(alg.Abs)
			if !ok {
				fmt.Printf("seed %4d: replicas diverged after full drain\n", seed)
				diverged++
				continue
			}
			fmt.Printf("seed %4d: %3d events, converged to %s\n", seed, len(tr), abs)
		} else {
			fmt.Printf("seed %4d: %3d events, CvT holds (%d messages dropped or in flight)\n",
				seed, len(tr), c.Pending())
		}
		converged++
	}
	fmt.Printf("\n%d/%d runs consistent\n", converged, seeds)
	if diverged > 0 {
		return 1
	}
	return 0
}

func algoNames() []string {
	var out []string
	for _, a := range registry.All() {
		out = append(out, a.Name)
	}
	return out
}
