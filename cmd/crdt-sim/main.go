// Command crdt-sim runs randomized executions of a CRDT algorithm on a
// simulated replicated cluster and reports convergence: the strong eventual
// consistency that Lemma 5 derives from ACC, observed directly.
//
// Usage:
//
//	crdt-sim -algo rga -nodes 3 -steps 200 -seeds 20 [-drop 0.1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/crdts/registry"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		algo  = flag.String("algo", "rga", "algorithm: "+strings.Join(algoNames(), ", "))
		nodes = flag.Int("nodes", 3, "cluster size")
		steps = flag.Int("steps", 100, "scheduler steps per run")
		seeds = flag.Int("seeds", 10, "number of randomized runs")
		drop  = flag.Float64("drop", 0, "per-destination message drop probability (disables the final drain)")
		verb  = flag.Bool("v", false, "print the trace of the first run")
	)
	flag.Parse()
	alg, ok := registry.ByName(*algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "crdt-sim: unknown algorithm %q (have: %s)\n", *algo, strings.Join(algoNames(), ", "))
		os.Exit(2)
	}
	fmt.Printf("algorithm %s (spec %s", alg.Name, alg.Spec.Name())
	if alg.NeedsCausal {
		fmt.Printf(", causal delivery")
	}
	fmt.Printf("), %d nodes, %d steps, %d runs\n", *nodes, *steps, *seeds)

	converged, diverged := 0, 0
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		w := sim.Workload{
			Object:     alg.New(),
			Abs:        alg.Abs,
			Gen:        sim.GenFunc(alg.GenOp),
			Nodes:      *nodes,
			Steps:      *steps,
			Causal:     alg.NeedsCausal,
			DropProb:   *drop,
			FinalDrain: *drop == 0,
		}
		c := w.Run(seed)
		tr := c.Trace()
		if err := tr.CheckWellFormed(); err != nil {
			fmt.Fprintf(os.Stderr, "crdt-sim: seed %d: malformed trace: %v\n", seed, err)
			os.Exit(1)
		}
		if *verb && seed == 1 {
			fmt.Println(trace.Render(tr))
			fmt.Print(trace.Summarize(tr))
		}
		if err := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); err != nil {
			fmt.Printf("seed %4d: CvT VIOLATED: %v\n", seed, err)
			diverged++
			continue
		}
		if *drop == 0 {
			abs, ok := c.Converged(alg.Abs)
			if !ok {
				fmt.Printf("seed %4d: replicas diverged after full drain\n", seed)
				diverged++
				continue
			}
			fmt.Printf("seed %4d: %3d events, converged to %s\n", seed, len(tr), abs)
		} else {
			fmt.Printf("seed %4d: %3d events, CvT holds (%d messages dropped or in flight)\n",
				seed, len(tr), c.Pending())
		}
		converged++
	}
	fmt.Printf("\n%d/%d runs consistent\n", converged, *seeds)
	if diverged > 0 {
		os.Exit(1)
	}
}

func algoNames() []string {
	var out []string
	for _, a := range registry.All() {
		out = append(out, a.Name)
	}
	return out
}
