// Command conformance runs the full validation battery for CRDT algorithms:
// specification well-formedness (Def 1, Sec 9), the CRDT-TS obligations
// (Sec 8), witness and exhaustive trace checks (ACC/XACC + SEC), and
// optional client refinement (Thm 7).
//
// Usage:
//
//	conformance [-algo all] [-seeds 8] [-steps 40] [-client 'node t1 {...}']
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/conformance"
	"repro/internal/crdts/registry"
)

func main() {
	var (
		algo    = flag.String("algo", "all", "algorithm name, or 'all'")
		seeds   = flag.Int("seeds", 8, "randomized traces per check")
		steps   = flag.Int("steps", 40, "scheduler steps per trace")
		workers = flag.Int("workers", 0, "workers for the parallel exploration check (0 = GOMAXPROCS)")
		chaos   = flag.Int("chaos-seeds", 0, "fault plans per algorithm for the fault-injection check (0 = derive from -seeds)")
		client  = flag.String("client", "", "client program for the refinement check")
	)
	flag.Parse()
	cfg := conformance.Config{Seeds: *seeds, Steps: *steps, Workers: *workers, ChaosSeeds: *chaos, Client: *client}
	var reports []conformance.Report
	if *algo == "all" {
		reports = conformance.RunAll(cfg)
	} else {
		alg, ok := registry.ByName(*algo)
		if !ok {
			fmt.Fprintf(os.Stderr, "conformance: unknown algorithm %q\n", *algo)
			os.Exit(2)
		}
		reports = []conformance.Report{conformance.Run(alg, cfg)}
	}
	failed := false
	for _, r := range reports {
		fmt.Print(r)
		if r.Err() != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("\nall %d algorithm(s) conform\n", len(reports))
}
