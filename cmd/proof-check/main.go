// Command proof-check runs the CRDT-TS proof method (Sec 8) for the seven
// UCR algorithms the paper verifies, printing each proof obligation's
// outcome — the executable counterpart of the paper's Examples paragraph.
//
// Usage:
//
//	proof-check [-seeds 6] [-steps 40] [-algo rga]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/crdts/registry"
	"repro/internal/proofmethod"
)

func main() {
	var (
		algo  = flag.String("algo", "all", "algorithm name, or 'all' for the seven UCR algorithms")
		seeds = flag.Int("seeds", 6, "randomized executions sampled per algorithm")
		steps = flag.Int("steps", 40, "scheduler steps per execution")
	)
	flag.Parse()
	cfg := proofmethod.Config{Seeds: *seeds, Steps: *steps}
	var reports []proofmethod.Report
	if *algo == "all" {
		reports = proofmethod.CheckAll(cfg)
	} else {
		alg, ok := registry.ByName(*algo)
		if !ok {
			fmt.Fprintf(os.Stderr, "proof-check: unknown algorithm %q\n", *algo)
			os.Exit(2)
		}
		reports = []proofmethod.Report{proofmethod.Check(alg, cfg)}
	}
	failed := false
	for _, r := range reports {
		fmt.Print(r)
		if r.Err() != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("\nall %d algorithm(s) discharge the CRDT-TS obligations (Theorem 8 ⇒ ACC)\n", len(reports))
}
