// Command paper-report reruns every experiment of the reproduction in one
// shot and prints a PASS/FAIL table — the per-experiment index of DESIGN.md
// as an executable artifact:
//
//	go run ./cmd/paper-report
package main

import (
	"fmt"
	"math/big"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/crdts/cseq"
	"repro/internal/crdts/registry"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/model"
	"repro/internal/proofmethod"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/spec"
)

type experiment struct {
	id    string
	claim string
	run   func() error
}

func main() {
	experiments := []experiment{
		{"E-Fig2", "RGA tree reads acdb", fig2},
		{"E-Fig3a", "concurrent inserts read acb; ACC holds", fig3a},
		{"E-Fig4", "cseq reads apqced; per-node orders differ", fig4},
		{"E-Fig5", "add-wins survives; Fig 5(b) needs XACC, not ACC", fig5},
		{"E-Sec2.5", "the client separates aw from rw/lww sets", sec25},
		{"E-Fig9/12", "the rely-guarantee client proof checks", fig12},
		{"E-Thm7", "Π ⊑φ (Γ,⊲⊳) for all nine algorithms", thm7},
		{"E-Lem5", "randomized traces satisfy consistency + SEC", lem5},
		{"E-Sec8", "seven UCR algorithms pass CRDT-TS", sec8},
		{"E-FW1", "X-wins client logic proves the done-flag post", fw1},
	}
	failed := 0
	for _, e := range experiments {
		start := time.Now()
		err := e.run()
		status := "PASS"
		if err != nil {
			status = "FAIL: " + err.Error()
			failed++
		}
		fmt.Printf("%-10s %-50s %8s  %s\n", e.id, e.claim, time.Since(start).Round(time.Millisecond), status)
	}
	if failed > 0 {
		fmt.Printf("\n%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
	fmt.Printf("\nall %d experiments reproduce\n", len(experiments))
}

func addAfter(a, b string) model.Op {
	anchor := model.Str(a)
	if anchor.Equal(spec.Sentinel) {
		anchor = spec.Sentinel
	}
	return model.Op{Name: spec.OpAddAfter, Arg: model.Pair(anchor, model.Str(b))}
}

func invoke(c *sim.Cluster, n model.NodeID, op model.Op) (model.Value, model.MsgID, error) {
	return c.Invoke(n, op)
}

func fig2() error {
	alg := registry.RGA()
	c := sim.NewCluster(alg.New(), 1)
	for _, op := range []model.Op{
		addAfter("◦", "a"), addAfter("a", "e"), addAfter("a", "b"),
		addAfter("a", "c"), addAfter("c", "d"),
		{Name: spec.OpRemove, Arg: model.Str("e")},
	} {
		if _, _, err := invoke(c, 0, op); err != nil {
			return err
		}
	}
	ret, _, err := invoke(c, 0, model.Op{Name: spec.OpRead})
	if err != nil {
		return err
	}
	want := model.List(model.Str("a"), model.Str("c"), model.Str("d"), model.Str("b"))
	if !ret.Equal(want) {
		return fmt.Errorf("read %s, want acdb", ret)
	}
	return nil
}

func fig3a() error {
	alg := registry.RGA()
	c := sim.NewCluster(alg.New(), 2)
	_, mA, _ := invoke(c, 0, addAfter("◦", "a"))
	if err := c.Deliver(1, mA); err != nil {
		return err
	}
	_, mB, _ := invoke(c, 0, addAfter("a", "b"))
	_, mC, _ := invoke(c, 1, addAfter("a", "c"))
	if err := c.Deliver(1, mB); err != nil {
		return err
	}
	if err := c.Deliver(0, mC); err != nil {
		return err
	}
	want := model.List(model.Str("a"), model.Str("c"), model.Str("b"))
	for n := model.NodeID(0); n < 2; n++ {
		ret, _, _ := invoke(c, n, model.Op{Name: spec.OpRead})
		if !ret.Equal(want) {
			return fmt.Errorf("node %s read %s, want acb", n, ret)
		}
	}
	res, err := core.CheckACC(c.Trace(), core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs})
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("ACC: %s", res.Reason)
	}
	return nil
}

func fig4() error {
	chosen := map[model.MsgID]*big.Rat{
		3: big.NewRat(-2, 1), 4: big.NewRat(5, 1),
		5: big.NewRat(4, 1), 6: big.NewRat(-1, 1),
	}
	obj := cseq.NewWithChooser(func(lo, hi *big.Rat, origin model.NodeID, mid model.MsgID) *big.Rat {
		if r, ok := chosen[mid]; ok {
			return r
		}
		return cseq.Midpoint(lo, hi, origin, mid)
	})
	alg := registry.CSeq()
	c := sim.NewCluster(obj, 2)
	_, mA, _ := invoke(c, 0, addAfter("◦", "a"))
	_ = c.Deliver(1, mA)
	_, mC, _ := invoke(c, 0, addAfter("a", "c"))
	_ = c.Deliver(1, mC)
	_, m1, _ := invoke(c, 0, addAfter("a", "p"))
	_, m2, _ := invoke(c, 0, addAfter("c", "d"))
	_, m3, _ := invoke(c, 1, addAfter("c", "e"))
	_, m4, _ := invoke(c, 1, addAfter("a", "q"))
	for _, d := range []struct {
		n model.NodeID
		m model.MsgID
	}{{1, m1}, {1, m2}, {0, m3}, {0, m4}} {
		if err := c.Deliver(d.n, d.m); err != nil {
			return err
		}
	}
	want := model.List(model.Str("a"), model.Str("p"), model.Str("q"),
		model.Str("c"), model.Str("e"), model.Str("d"))
	ret, _, _ := invoke(c, 0, model.Op{Name: spec.OpRead})
	if !ret.Equal(want) {
		return fmt.Errorf("read %s, want apqced", ret)
	}
	res, err := core.CheckACC(c.Trace(), core.Problem{Object: obj, Spec: alg.Spec, Abs: alg.Abs})
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("ACC: %s", res.Reason)
	}
	return nil
}

func fig5() error {
	alg := registry.AWSet()
	c := sim.NewCluster(alg.New(), 2, sim.WithCausalDelivery())
	add0 := model.Op{Name: spec.OpAdd, Arg: model.Int(0)}
	rmv0 := model.Op{Name: spec.OpRemove, Arg: model.Int(0)}
	_, m1, _ := invoke(c, 0, add0)
	_, m2, _ := invoke(c, 1, add0)
	_, m3, _ := invoke(c, 0, rmv0)
	_, m4, _ := invoke(c, 1, rmv0)
	for _, d := range []struct {
		n model.NodeID
		m model.MsgID
	}{{0, m2}, {0, m4}, {1, m1}, {1, m3}} {
		if err := c.Deliver(d.n, d.m); err != nil {
			return err
		}
	}
	p := core.XProblem{
		Problem: core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs},
		XSpec:   alg.XSpec,
	}
	xres, err := core.CheckXACC(c.Trace(), p)
	if err != nil {
		return err
	}
	if !xres.OK {
		return fmt.Errorf("XACC: %s", xres.Reason)
	}
	ares, err := core.CheckACC(c.Trace(), p.Problem)
	if err != nil {
		return err
	}
	if ares.OK {
		return fmt.Errorf("plain ACC unexpectedly accepted Fig 5(b)")
	}
	return nil
}

func sec25() error {
	prog := lang.MustParse(`
		node t1 { add(0); remove(0); x := read(); }
		node t2 { add(0); remove(0); y := read(); }`)
	count := func(alg registry.Algorithm) (int, error) {
		behaviors, err := refine.Explorer{}.Behaviors(prog, func() refine.Runtime {
			return refine.NewConcrete(alg, 2)
		})
		if err != nil {
			return 0, err
		}
		n := 0
		for _, b := range behaviors {
			if b.Envs[0]["x"].Contains(model.Int(0)) && b.Envs[1]["y"].Contains(model.Int(0)) {
				n++
			}
		}
		return n, nil
	}
	aw, err := count(registry.AWSet())
	if err != nil {
		return err
	}
	rw, err := count(registry.RWSet())
	if err != nil {
		return err
	}
	lww, err := count(registry.LWWSet())
	if err != nil {
		return err
	}
	if aw == 0 || rw != 0 || lww != 0 {
		return fmt.Errorf("violations: aw=%d rw=%d lww=%d (want >0, 0, 0)", aw, rw, lww)
	}
	return nil
}

func fig12() error {
	prog := lang.MustParse(`
		node t1 { addAfter("a", "b"); x := read(); }
		node t2 { u := read(); if ("b" in u) { addAfter("a", "c"); } }
		node t3 { v := read(); if ("c" in v) { addAfter("c", "d"); } y := read(); }`)
	alphaB := logic.Act(0, spec.OpAddAfter, model.Pair(model.Str("a"), model.Str("b")))
	alphaC := logic.Act(1, spec.OpAddAfter, model.Pair(model.Str("a"), model.Str("c")))
	alphaD := logic.Act(2, spec.OpAddAfter, model.Pair(model.Str("c"), model.Str("d")))
	g1 := logic.RG{{Issues: alphaB}}
	g2 := logic.RG{{Requires: []logic.Action{alphaB}, Issues: alphaC}}
	g3 := logic.RG{{Requires: []logic.Action{alphaC}, Issues: alphaD}}
	post := parseExpr(`!(s == ["a","c","d","b"]) || (y == s || y == ["a","c","d"])`)
	pf := logic.Proof{
		Ctx:  logic.Ctx{Spec: spec.ListSpec{}, IsQuery: func(n model.OpName) bool { return n == spec.OpRead }},
		Init: model.List(model.Str("a")),
		Threads: []logic.ThreadProof{
			{Thread: prog.Threads[0], R: append(append(logic.RG{}, g2...), g3...), G: g1},
			{Thread: prog.Threads[1], R: append(append(logic.RG{}, g1...), g3...), G: g2},
			{Thread: prog.Threads[2], R: append(append(logic.RG{}, g1...), g2...), G: g3, Post: post},
		},
	}
	return pf.Check()
}

func thm7() error {
	clients := map[string]string{
		"counter":  `node t1 { inc(1); x := read(); } node t2 { dec(2); y := read(); }`,
		"register": `node t1 { write(1); x := read(); } node t2 { write(2); y := read(); }`,
		"g-set":    `node t1 { add("a"); x := lookup("b"); } node t2 { add("b"); y := lookup("a"); }`,
		"set":      `node t1 { add("a"); x := lookup("a"); } node t2 { remove("a"); y := lookup("a"); }`,
		"list": `node t1 { addAfter(sentinel, "a"); x := read(); }
		         node t2 { u := read(); if ("a" in u) { addAfter("a", "b"); } y := read(); }`,
	}
	for _, alg := range registry.All() {
		name := alg.Spec.Name()
		if name == "aw-set" || name == "rw-set" {
			name = "set"
		}
		prog, err := lang.Parse(clients[name])
		if err != nil {
			return err
		}
		res, err := refine.Check(alg, prog, refine.Explorer{})
		if err != nil {
			return fmt.Errorf("%s: %w", alg.Name, err)
		}
		if !res.OK {
			return fmt.Errorf("%s: refinement violated", alg.Name)
		}
	}
	return nil
}

func lem5() error {
	for _, alg := range registry.All() {
		for seed := int64(1); seed <= 5; seed++ {
			w := sim.Workload{
				Object: alg.New(), Abs: alg.Abs, Gen: sim.GenFunc(alg.GenOp),
				Nodes: 3, Steps: 30, Causal: alg.NeedsCausal,
			}
			tr := w.Run(seed).Trace()
			p := core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs}
			var res core.Result
			var err error
			if alg.IsX() {
				res, err = core.CheckXACCWitness(tr, core.XProblem{Problem: p, XSpec: alg.XSpec})
			} else {
				res, err = core.CheckACCWitness(tr, p, alg.TSOrder)
			}
			if err != nil {
				return fmt.Errorf("%s seed %d: %w", alg.Name, seed, err)
			}
			if !res.OK {
				return fmt.Errorf("%s seed %d: %s", alg.Name, seed, res.Reason)
			}
			if err := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); err != nil {
				return fmt.Errorf("%s seed %d: %w", alg.Name, seed, err)
			}
		}
	}
	return nil
}

func sec8() error {
	for _, rep := range proofmethod.CheckAll(proofmethod.Config{Seeds: 3, Steps: 30}) {
		if err := rep.Err(); err != nil {
			return err
		}
	}
	return nil
}

func fw1() error {
	prog := lang.MustParse(`
		node t1 { add(0); remove(0); add("d1"); x := read(); }
		node t2 { add(0); remove(0); add("d2"); y := read(); }`)
	add1 := logic.Action{ID: "add1", Node: 0, Op: model.Op{Name: spec.OpAdd, Arg: model.Int(0)}}
	rmv1 := logic.Action{ID: "rmv1", Node: 0, Op: model.Op{Name: spec.OpRemove, Arg: model.Int(0)}}
	d1 := logic.Action{ID: "d1", Node: 0, Op: model.Op{Name: spec.OpAdd, Arg: model.Str("d1")}}
	add2 := logic.Action{ID: "add2", Node: 1, Op: model.Op{Name: spec.OpAdd, Arg: model.Int(0)}}
	rmv2 := logic.Action{ID: "rmv2", Node: 1, Op: model.Op{Name: spec.OpRemove, Arg: model.Int(0)}}
	d2 := logic.Action{ID: "d2", Node: 1, Op: model.Op{Name: spec.OpAdd, Arg: model.Str("d2")}}
	g1 := logic.RG{{Issues: add1}, {Requires: []logic.Action{add1}, Issues: rmv1}, {Requires: []logic.Action{rmv1}, Issues: d1}}
	g2 := logic.RG{{Issues: add2}, {Requires: []logic.Action{add2}, Issues: rmv2}, {Requires: []logic.Action{rmv2}, Issues: d2}}
	for _, xsp := range []spec.XSpec{spec.AWSetSpec{}, spec.RWSetSpec{}} {
		pf := logic.XProof{
			Ctx: logic.XCtx{XSpec: xsp, IsQuery: func(n model.OpName) bool {
				return n == spec.OpRead || n == spec.OpLookup
			}},
			Init: model.List(),
			Threads: []logic.ThreadProof{
				{Thread: prog.Threads[0], R: g2, G: g1, Post: parseExpr(`!("d2" in s) || !(0 in s)`)},
				{Thread: prog.Threads[1], R: g1, G: g2, Post: parseExpr(`!("d1" in s) || !(0 in s)`)},
			},
		}
		if err := pf.Check(); err != nil {
			return fmt.Errorf("%s: %w", xsp.Name(), err)
		}
	}
	return nil
}

func parseExpr(src string) lang.Expr {
	prog := lang.MustParse("node t { p := " + src + "; }")
	return prog.Threads[0].Body[0].(lang.Assign).E
}
