package repro_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary, guarding the
// walkthroughs against rot. Each example self-checks (log.Fatal on any
// violated claim), so a zero exit status means its narrative still holds.
// Skipped with -short (each run includes a compile).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped with -short")
	}
	examples := map[string]string{
		"quickstart":    "ACC certified",
		"collab-editor": "apqced",
		"shopping-cart": "XACC certified",
		"client-verify": "Abstraction Theorem",
		"todo-board":    "composite ACC certified",
		"offline-sync":  "ACC certified",
	}
	for name, marker := range examples {
		name, marker := name, marker
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Fatalf("output lacks the expected marker %q:\n%s", marker, out)
			}
		})
	}
}
