// Benchmarks regenerating every figure-level experiment of the paper, plus
// the scaling sweeps and ablations recorded in EXPERIMENTS.md. One benchmark
// per paper artifact:
//
//	Fig 2  → BenchmarkFig2_RGAOperations
//	Fig 3  → BenchmarkFig3_ACCDecision
//	Fig 4  → BenchmarkFig4_CSeqACC
//	Fig 5  → BenchmarkFig5_XACCDecision
//	Fig 9/12 → BenchmarkFig12_LogicProof
//	Thm 7  → BenchmarkThm7_Refinement
//	Sec 8  → BenchmarkSec8_ProofObligations/<algorithm>
//	Lem 5  → BenchmarkLem5_Convergence
//
// Ablations: witness-mode vs exhaustive ACC, trace-length scaling of the
// witness checker, and per-algorithm simulator throughput.
package repro_test

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/absmachine"
	"repro/internal/core"
	"repro/internal/crdt"
	"repro/internal/crdts/cseq"
	"repro/internal/crdts/registry"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/model"
	"repro/internal/product"
	"repro/internal/proofmethod"
	"repro/internal/refine"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/statebased"
	"repro/internal/trace"
)

func mustInvoke(b *testing.B, c *sim.Cluster, node model.NodeID, op model.Op) model.MsgID {
	b.Helper()
	_, mid, err := c.Invoke(node, op)
	if err != nil {
		b.Fatal(err)
	}
	return mid
}

func mustDeliver(b *testing.B, c *sim.Cluster, node model.NodeID, mids ...model.MsgID) {
	b.Helper()
	for _, mid := range mids {
		if err := c.Deliver(node, mid); err != nil {
			b.Fatal(err)
		}
	}
}

func addAfter(a, bb string) model.Op {
	anchor := model.Str(a)
	if anchor.Equal(spec.Sentinel) {
		anchor = spec.Sentinel
	}
	return model.Op{Name: spec.OpAddAfter, Arg: model.Pair(anchor, model.Str(bb))}
}

// BenchmarkFig2_RGAOperations measures raw RGA operation throughput at the
// origin replica (prepare + local apply), the Fig 2 algorithm itself.
func BenchmarkFig2_RGAOperations(b *testing.B) {
	alg := registry.RGA()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sim.NewCluster(alg.New(), 1)
		mustInvoke(b, c, 0, addAfter("◦", "e0"))
		for j := 1; j < 20; j++ {
			mustInvoke(b, c, 0, addAfter(fmt.Sprintf("e%d", j-1), fmt.Sprintf("e%d", j)))
		}
		mustInvoke(b, c, 0, model.Op{Name: spec.OpRead})
	}
}

// fig3Trace builds the Fig 3(a) execution on RGA.
func fig3Trace(b *testing.B) (trace.Trace, core.Problem) {
	alg := registry.RGA()
	c := sim.NewCluster(alg.New(), 2)
	a := mustInvoke(b, c, 0, addAfter("◦", "a"))
	mustDeliver(b, c, 1, a)
	bb := mustInvoke(b, c, 0, addAfter("a", "b"))
	cc := mustInvoke(b, c, 1, addAfter("a", "c"))
	mustDeliver(b, c, 1, bb)
	mustDeliver(b, c, 0, cc)
	mustInvoke(b, c, 0, model.Op{Name: spec.OpRead})
	mustInvoke(b, c, 1, model.Op{Name: spec.OpRead})
	return c.Trace(), core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs}
}

// BenchmarkFig3_ACCDecision decides ACC on the Fig 3(a) trace, exhaustively
// and in witness mode (the ablation the EXPERIMENTS table reports).
func BenchmarkFig3_ACCDecision(b *testing.B) {
	tr, p := fig3Trace(b)
	alg := registry.RGA()
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.CheckACC(tr, p)
			if err != nil || !res.OK {
				b.Fatalf("%v %v", err, res.Reason)
			}
		}
	})
	b.Run("witness", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.CheckACCWitness(tr, p, alg.TSOrder)
			if err != nil || !res.OK {
				b.Fatalf("%v %v", err, res.Reason)
			}
		}
	})
}

// BenchmarkFig4_CSeqACC decides ACC on the Fig 4 continuous-sequence trace
// (apqced — per-node arbitration orders differ).
func BenchmarkFig4_CSeqACC(b *testing.B) {
	chosen := map[model.MsgID]*big.Rat{
		3: big.NewRat(-2, 1), 4: big.NewRat(5, 1),
		5: big.NewRat(4, 1), 6: big.NewRat(-1, 1),
	}
	obj := cseq.NewWithChooser(func(lo, hi *big.Rat, origin model.NodeID, mid model.MsgID) *big.Rat {
		if r, ok := chosen[mid]; ok {
			return r
		}
		return cseq.Midpoint(lo, hi, origin, mid)
	})
	alg := registry.CSeq()
	c := sim.NewCluster(obj, 2)
	a := mustInvoke(b, c, 0, addAfter("◦", "a"))
	mustDeliver(b, c, 1, a)
	cc := mustInvoke(b, c, 0, addAfter("a", "c"))
	mustDeliver(b, c, 1, cc)
	p := mustInvoke(b, c, 0, addAfter("a", "p"))
	d := mustInvoke(b, c, 0, addAfter("c", "d"))
	e := mustInvoke(b, c, 1, addAfter("c", "e"))
	q := mustInvoke(b, c, 1, addAfter("a", "q"))
	mustDeliver(b, c, 1, p, d)
	mustDeliver(b, c, 0, e, q)
	tr := c.Trace()
	prob := core.Problem{Object: obj, Spec: alg.Spec, Abs: alg.Abs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.CheckACC(tr, prob)
		if err != nil || !res.OK {
			b.Fatalf("%v %v", err, res.Reason)
		}
	}
}

// BenchmarkFig5_XACCDecision decides XACC on the Fig 5(b) add-wins trace
// (the cancellation-relaxed coherence case).
func BenchmarkFig5_XACCDecision(b *testing.B) {
	alg := registry.AWSet()
	c := sim.NewCluster(alg.New(), 2, sim.WithCausalDelivery())
	add0 := model.Op{Name: spec.OpAdd, Arg: model.Int(0)}
	rmv0 := model.Op{Name: spec.OpRemove, Arg: model.Int(0)}
	m1 := mustInvoke(b, c, 0, add0)
	m2 := mustInvoke(b, c, 1, add0)
	m3 := mustInvoke(b, c, 0, rmv0)
	m4 := mustInvoke(b, c, 1, rmv0)
	mustDeliver(b, c, 0, m2, m4)
	mustDeliver(b, c, 1, m1, m3)
	tr := c.Trace()
	p := core.XProblem{
		Problem: core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs},
		XSpec:   alg.XSpec,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.CheckXACC(tr, p)
		if err != nil || !res.OK {
			b.Fatalf("%v %v", err, res.Reason)
		}
	}
}

// BenchmarkFig12_LogicProof machine-checks the Fig 9/12 rely-guarantee proof.
func BenchmarkFig12_LogicProof(b *testing.B) {
	prog := lang.MustParse(`
		node t1 { addAfter("a", "b"); x := read(); }
		node t2 { u := read(); if ("b" in u) { addAfter("a", "c"); } }
		node t3 { v := read(); if ("c" in v) { addAfter("c", "d"); } y := read(); }`)
	alphaB := logic.Act(0, spec.OpAddAfter, model.Pair(model.Str("a"), model.Str("b")))
	alphaC := logic.Act(1, spec.OpAddAfter, model.Pair(model.Str("a"), model.Str("c")))
	alphaD := logic.Act(2, spec.OpAddAfter, model.Pair(model.Str("c"), model.Str("d")))
	g1 := logic.RG{{Issues: alphaB}}
	g2 := logic.RG{{Requires: []logic.Action{alphaB}, Issues: alphaC}}
	g3 := logic.RG{{Requires: []logic.Action{alphaC}, Issues: alphaD}}
	post := lang.MustParse(`node t { p := !(s == ["a","c","d","b"]) || (y == s || y == ["a","c","d"]); }`).
		Threads[0].Body[0].(lang.Assign).E
	pf := logic.Proof{
		Ctx: logic.Ctx{
			Spec:    spec.ListSpec{},
			IsQuery: func(n model.OpName) bool { return n == spec.OpRead },
		},
		Init: model.List(model.Str("a")),
		Threads: []logic.ThreadProof{
			{Thread: prog.Threads[0], R: append(append(logic.RG{}, g2...), g3...), G: g1},
			{Thread: prog.Threads[1], R: append(append(logic.RG{}, g1...), g3...), G: g2},
			{Thread: prog.Threads[2], R: append(append(logic.RG{}, g1...), g2...), G: g3, Post: post},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := pf.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThm7_Refinement runs the contextual-refinement check (concrete vs
// abstract behaviour enumeration) for one representative per data type.
func BenchmarkThm7_Refinement(b *testing.B) {
	clients := map[string]string{
		"counter": `node t1 { inc(1); x := read(); } node t2 { dec(2); y := read(); }`,
		"lww-set": `node t1 { add("a"); x := lookup("a"); } node t2 { remove("a"); y := lookup("a"); }`,
		"rga": `node t1 { addAfter(sentinel, "a"); x := read(); }
		        node t2 { u := read(); if ("a" in u) { addAfter("a", "b"); } y := read(); }`,
		"aw-set": `node t1 { add("a"); x := lookup("a"); } node t2 { remove("a"); y := lookup("a"); }`,
	}
	for _, name := range []string{"counter", "lww-set", "rga", "aw-set"} {
		alg, _ := registry.ByName(name)
		prog := lang.MustParse(clients[name])
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := refine.Check(alg, prog, refine.Explorer{})
				if err != nil || !res.OK {
					b.Fatalf("%v %v", err, res.Extra)
				}
			}
		})
	}
}

// BenchmarkSec8_ProofObligations runs the CRDT-TS obligation sweep for each
// of the seven UCR algorithms (the paper's Sec 8 examples).
func BenchmarkSec8_ProofObligations(b *testing.B) {
	for _, alg := range registry.UCR() {
		alg := alg
		b.Run(alg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := proofmethod.Check(alg, proofmethod.Config{Seeds: 2, Steps: 25})
				if err := rep.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLem5_Convergence measures the CvT (SEC) decision on randomized
// traces — the property Lemma 5 derives from ACC.
func BenchmarkLem5_Convergence(b *testing.B) {
	for _, alg := range []registry.Algorithm{registry.RGA(), registry.LWWSet()} {
		alg := alg
		w := sim.Workload{
			Object: alg.New(), Abs: alg.Abs, Gen: sim.GenFunc(alg.GenOp),
			Nodes: 3, Steps: 60, Causal: alg.NeedsCausal,
		}
		tr := w.Run(1).Trace()
		b.Run(alg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := core.CheckConvergenceFrom(tr, alg.New().Init(), alg.Abs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkACCWitness_TraceLength is the scaling sweep: witness-mode ACC
// decision cost against trace length.
func BenchmarkACCWitness_TraceLength(b *testing.B) {
	alg := registry.RGA()
	for _, steps := range []int{20, 40, 80, 160} {
		steps := steps
		w := sim.Workload{
			Object: alg.New(), Abs: alg.Abs, Gen: sim.GenFunc(alg.GenOp),
			Nodes: 3, Steps: steps,
		}
		tr := w.Run(1).Trace()
		p := core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs}
		b.Run(fmt.Sprintf("steps=%d/events=%d", steps, len(tr)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.CheckACCWitness(tr, p, alg.TSOrder)
				if err != nil || !res.OK {
					b.Fatalf("%v %v", err, res.Reason)
				}
			}
		})
	}
}

// BenchmarkSim_Throughput measures simulator operation throughput per
// algorithm (invoke + broadcast + drain).
func BenchmarkSim_Throughput(b *testing.B) {
	for _, alg := range registry.All() {
		alg := alg
		b.Run(alg.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := sim.Workload{
					Object: alg.New(), Abs: alg.Abs, Gen: sim.GenFunc(alg.GenOp),
					Nodes: 3, Steps: 50, Causal: alg.NeedsCausal, FinalDrain: true,
				}
				c := w.Run(int64(i + 1))
				if _, ok := c.Converged(alg.Abs); !ok {
					b.Fatal("diverged")
				}
			}
		})
	}
}

// BenchmarkXACCWitness_TraceLength is the X-wins scaling sweep: witness-mode
// XACC against causal trace length (the exhaustive decider caps at 9 visible
// operations per node; the witness has no such bound).
func BenchmarkXACCWitness_TraceLength(b *testing.B) {
	alg := registry.AWSet()
	for _, steps := range []int{20, 40, 80} {
		steps := steps
		w := sim.Workload{
			Object: alg.New(), Abs: alg.Abs, Gen: sim.GenFunc(alg.GenOp),
			Nodes: 3, Steps: steps, Causal: true,
		}
		tr := w.Run(1).Trace()
		p := core.XProblem{
			Problem: core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs},
			XSpec:   alg.XSpec,
		}
		b.Run(fmt.Sprintf("steps=%d/events=%d", steps, len(tr)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.CheckXACCWitness(tr, p)
				if err != nil || !res.OK {
					b.Fatalf("%v %v", err, res.Reason)
				}
			}
		})
	}
}

// BenchmarkAbsMachine_CoherentInsert measures the Sec 6 machine's insertion
// cost as ξ sequences grow.
func BenchmarkAbsMachine_CoherentInsert(b *testing.B) {
	for _, ops := range []int{8, 16, 32} {
		ops := ops
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := absmachine.New(spec.SetSpec{}, 2, spec.SetSpec{}.Init(),
					func(o model.Op) bool { return o.Name == spec.OpRead || o.Name == spec.OpLookup })
				var mids []model.MsgID
				for j := 0; j < ops; j++ {
					name := spec.OpAdd
					if j%2 == 1 {
						name = spec.OpRemove
					}
					_, mid := m.Invoke(0, model.Op{Name: name, Arg: model.Int(int64(j % 3))})
					mids = append(mids, mid)
				}
				for _, mid := range mids {
					pos := m.InsertPositions(1, mid)
					if len(pos) == 0 {
						b.Fatal("stuck")
					}
					if err := m.Receive(1, mid, pos[len(pos)-1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkProduct_Composition measures the Sec 2.4 product object under a
// mixed cart+clock workload, with its compositional ACC witness.
func BenchmarkProduct_Composition(b *testing.B) {
	cart := registry.LWWSet()
	clock := registry.Counter()
	obj := product.MustNew(
		product.Component{Name: "cart", Object: cart.New(), Spec: cart.Spec, Abs: cart.Abs, TSOrder: cart.TSOrder},
		product.Component{Name: "clock", Object: clock.New(), Spec: clock.Spec, Abs: clock.Abs, TSOrder: clock.TSOrder},
	)
	gen := func(rng *rand.Rand, _ crdt.State, _ crdt.Abstraction, pool []model.Value, _ func() model.Value) model.Op {
		if rng.Intn(2) == 0 {
			return model.Op{Name: "cart.add", Arg: pool[rng.Intn(len(pool))]}
		}
		return model.Op{Name: "clock.inc", Arg: model.Int(1)}
	}
	p := core.Problem{Object: obj, Spec: obj.ProductSpec(), Abs: obj.Abs}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := sim.Workload{Object: obj, Abs: obj.Abs, Gen: gen, Nodes: 3, Steps: 30}
		tr := w.Run(int64(i + 1)).Trace()
		res, err := core.CheckACCWitness(tr, p, obj.TSOrder)
		if err != nil || !res.OK {
			b.Fatalf("%v %v", err, res.Reason)
		}
	}
}

// BenchmarkStateBased_Gossip measures the state-based PN-counter under
// random updates and anti-entropy (the future-work substrate).
func BenchmarkStateBased_Gossip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		c := statebased.NewCluster(statebased.PNCounterObject{}, 3)
		for j := 0; j < 60; j++ {
			node := model.NodeID(rng.Intn(3))
			if err := c.Update(node, model.Op{Name: "inc", Arg: model.Int(1)}); err != nil {
				b.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				c.GossipRandom(rng)
			}
		}
		c.GossipAll()
		if _, ok := c.Converged(); !ok {
			b.Fatal("diverged")
		}
	}
}

// BenchmarkLogic_Judgments measures the core logic judgments on the Fig 12
// assertions: stabilization, Sat, and entailment.
func BenchmarkLogic_Judgments(b *testing.B) {
	ctx := logic.Ctx{Spec: spec.ListSpec{}}
	ab := logic.Act(0, spec.OpAddAfter, model.Pair(model.Str("a"), model.Str("b")))
	ac := logic.Act(1, spec.OpAddAfter, model.Pair(model.Str("a"), model.Str("c")))
	ad := logic.Act(2, spec.OpAddAfter, model.Pair(model.Str("c"), model.Str("d")))
	base := logic.Base{Init: model.List(model.Str("a"))}
	R := logic.RG{
		{Issues: ab},
		{Requires: []logic.Action{ab}, Issues: ac},
		{Requires: []logic.Action{ac}, Issues: ad},
	}
	post := lang.MustParse(`node t { p := s == ["a"] || "b" in s || true; }`).Threads[0].Body[0].(lang.Assign).E
	b.Run("stabilize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := ctx.Stabilize(base, R)
			if err := ctx.Sta(p, R); err != nil {
				b.Fatal(err)
			}
		}
	})
	stable := ctx.Stabilize(base, R)
	b.Run("sat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ctx.Sat(stable, post); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("entail", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ctx.Entail(base, stable); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExecRelated_Ablation compares the incremental ExecRelated (the
// default) with the specification-literal full re-execution, on witness
// orders over RGA traces — the "memoized vs naive prefix re-execution"
// ablation from DESIGN.md.
func BenchmarkExecRelated_Ablation(b *testing.B) {
	alg := registry.RGA()
	for _, steps := range []int{40, 120} {
		steps := steps
		w := sim.Workload{
			Object: alg.New(), Abs: alg.Abs, Gen: sim.GenFunc(alg.GenOp),
			Nodes: 3, Steps: steps,
		}
		tr := w.Run(1).Trace()
		p := core.Problem{Object: alg.New(), Spec: alg.Spec, Abs: alg.Abs}
		for _, mode := range []string{"incremental", "naive"} {
			mode := mode
			b.Run(fmt.Sprintf("%s/events=%d", mode, len(tr)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var res core.Result
					var err error
					if mode == "incremental" {
						res, err = core.CheckACCWitness(tr, p, alg.TSOrder)
					} else {
						res, err = core.CheckACCWitnessNaive(tr, p, alg.TSOrder)
					}
					if err != nil || !res.OK {
						b.Fatalf("%v %v", err, res.Reason)
					}
				}
			})
		}
	}
}

// BenchmarkExploreParallel compares the sequential schedule explorer against
// the parallel engine on a 3-node, 8-op counter script. The three leading
// reads produce identity effectors (never broadcast), which keeps the
// interleaving space tractable while the five-increment tail gives the
// commutativity reduction a long drain phase to prune; the sequential
// explorer walks the same graph unreduced.
func BenchmarkExploreParallel(b *testing.B) {
	alg := registry.Counter()
	script := sim.Script{
		{Node: 0, Op: model.Op{Name: spec.OpRead}},
		{Node: 1, Op: model.Op{Name: spec.OpRead}},
		{Node: 2, Op: model.Op{Name: spec.OpRead}},
		{Node: 0, Op: model.Op{Name: spec.OpInc, Arg: model.Int(1)}},
		{Node: 1, Op: model.Op{Name: spec.OpInc, Arg: model.Int(2)}},
		{Node: 2, Op: model.Op{Name: spec.OpInc, Arg: model.Int(3)}},
		{Node: 0, Op: model.Op{Name: spec.OpInc, Arg: model.Int(4)}},
		{Node: 1, Op: model.Op{Name: spec.OpInc, Arg: model.Int(5)}},
	}
	const budget = 20_000_000
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.ExploreSchedules(alg.New(), 3, script, false, budget, func(*sim.Cluster) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sim.ExploreSchedulesParallel(alg.New(), 3, script, false,
					sim.ParallelConfig{Workers: workers, MaxStates: budget}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Dedup-key ablation: the per-configuration cost of the seen-set key on
	// the explorers' hot path — interning the canonical binary encoding as a
	// string vs the 64-bit fingerprint of the same bytes used now. The
	// snapshots include mid-schedule configurations with pending messages, so
	// both keyings cover the message fields, not just replica states.
	snaps := exploreSnapshots(alg, script)
	b.Run("dedup-key/string", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := make(map[string]bool, len(snaps))
			for j, c := range snaps {
				seen[strconv.Itoa(j%8)+"|"+string(c.AppendBinary(nil))] = true
			}
			if len(seen) != len(snaps) {
				b.Fatalf("string keys collided: %d of %d", len(seen), len(snaps))
			}
		}
	})
	b.Run("dedup-key/fingerprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seen := make(map[uint64]bool, len(snaps))
			for j, c := range snaps {
				seen[c.Fingerprint(uint64(j%8))] = true
			}
			if len(seen) != len(snaps) {
				b.Fatalf("fingerprints collided: %d of %d", len(seen), len(snaps))
			}
		}
	})
}

// exploreSnapshots walks one delivery schedule of script, cloning the cluster
// after every invoke and after each single delivery — a spread of distinct
// configurations (including ones with undelivered copies) matching what the
// explorers fingerprint.
func exploreSnapshots(alg registry.Algorithm, script sim.Script) []*sim.Cluster {
	var out []*sim.Cluster
	c := sim.NewCluster(alg.New(), 3)
	out = append(out, c.Clone())
	for _, so := range script {
		if _, _, err := c.Invoke(so.Node, so.Op); err == nil {
			out = append(out, c.Clone())
		}
		for dst := 0; dst < 3; dst++ {
			if mids := c.Deliverable(model.NodeID(dst)); len(mids) > 0 {
				if err := c.Deliver(model.NodeID(dst), mids[0]); err == nil {
					out = append(out, c.Clone())
				}
			}
		}
	}
	c.DeliverAll()
	return append(out, c.Clone())
}

// BenchmarkFW1_XLogicProof measures the prototype X-wins client-logic proof
// of the Sec 2.5 done-flag postcondition (add-wins side).
func BenchmarkFW1_XLogicProof(b *testing.B) {
	prog := lang.MustParse(`
		node t1 { add(0); remove(0); add("d1"); x := read(); }
		node t2 { add(0); remove(0); add("d2"); y := read(); }`)
	add1 := logic.Action{ID: "add1", Node: 0, Op: model.Op{Name: spec.OpAdd, Arg: model.Int(0)}}
	rmv1 := logic.Action{ID: "rmv1", Node: 0, Op: model.Op{Name: spec.OpRemove, Arg: model.Int(0)}}
	d1 := logic.Action{ID: "d1", Node: 0, Op: model.Op{Name: spec.OpAdd, Arg: model.Str("d1")}}
	add2 := logic.Action{ID: "add2", Node: 1, Op: model.Op{Name: spec.OpAdd, Arg: model.Int(0)}}
	rmv2 := logic.Action{ID: "rmv2", Node: 1, Op: model.Op{Name: spec.OpRemove, Arg: model.Int(0)}}
	d2 := logic.Action{ID: "d2", Node: 1, Op: model.Op{Name: spec.OpAdd, Arg: model.Str("d2")}}
	g1 := logic.RG{{Issues: add1}, {Requires: []logic.Action{add1}, Issues: rmv1}, {Requires: []logic.Action{rmv1}, Issues: d1}}
	g2 := logic.RG{{Issues: add2}, {Requires: []logic.Action{add2}, Issues: rmv2}, {Requires: []logic.Action{rmv2}, Issues: d2}}
	post1 := lang.MustParse(`node t { p := !("d2" in s) || !(0 in s); }`).Threads[0].Body[0].(lang.Assign).E
	post2 := lang.MustParse(`node t { p := !("d1" in s) || !(0 in s); }`).Threads[0].Body[0].(lang.Assign).E
	pf := logic.XProof{
		Ctx: logic.XCtx{XSpec: spec.AWSetSpec{}, IsQuery: func(n model.OpName) bool {
			return n == spec.OpRead || n == spec.OpLookup
		}},
		Init: model.List(),
		Threads: []logic.ThreadProof{
			{Thread: prog.Threads[0], R: g2, G: g1, Post: post1},
			{Thread: prog.Threads[1], R: g1, G: g2, Post: post2},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := pf.Check(); err != nil {
			b.Fatal(err)
		}
	}
}
